//go:build linux && (amd64 || arm64)

// recvmmsg/sendmmsg batching for real UDP sockets. golang.org/x/net/ipv4
// provides the same thing as ReadBatch/WriteBatch, but this repository is
// dependency-free, so the two syscalls are invoked directly; the build tag
// restricts the file to the linux ABIs where Msghdr.Iovlen/Iovec.Len are
// uint64, and every other platform takes the portable connIO fallback.

package udpnet

import (
	"net"
	"net/netip"
	"syscall"
	"unsafe"
)

// mmsghdr mirrors struct mmsghdr from <sys/socket.h>.
type mmsghdr struct {
	hdr    syscall.Msghdr
	msgLen uint32
	_      [4]byte
}

// mmsgIO batches datagrams through recvmmsg/sendmmsg on one UDP socket: one
// syscall moves up to len(ms) datagrams, integrated with the runtime
// netpoller through SyscallConn so blocked reads park the goroutine instead
// of spinning.
type mmsgIO struct {
	rc syscall.RawConn
	v6 bool // socket family: v6 sockets need v4-mapped destination sockaddrs

	rhdrs, whdrs []mmsghdr
	riovs, wiovs []syscall.Iovec
	// rnames/wnames hold peer sockaddrs; RawSockaddrInet6 (28 bytes) is
	// large enough for both families.
	rnames, wnames []syscall.RawSockaddrInet6
}

// newMmsgIO returns the batched implementation for uc, or nil if the raw
// descriptor is unavailable.
func newMmsgIO(uc *net.UDPConn) batchIO {
	rc, err := uc.SyscallConn()
	if err != nil {
		return nil
	}
	la, _ := uc.LocalAddr().(*net.UDPAddr)
	v6 := la != nil && la.IP.To4() == nil
	return &mmsgIO{rc: rc, v6: v6}
}

func (m *mmsgIO) ensure(hdrs *[]mmsghdr, iovs *[]syscall.Iovec, names *[]syscall.RawSockaddrInet6, n int) {
	if len(*hdrs) < n {
		*hdrs = make([]mmsghdr, n)
		*iovs = make([]syscall.Iovec, n)
		*names = make([]syscall.RawSockaddrInet6, n)
	}
}

// readBatch fills ms from one recvmmsg call, blocking via the netpoller
// until at least one datagram is ready.
func (m *mmsgIO) readBatch(ms []*dgram) (int, error) {
	m.ensure(&m.rhdrs, &m.riovs, &m.rnames, len(ms))
	for i, d := range ms {
		m.riovs[i] = syscall.Iovec{Base: &d.buf[0], Len: uint64(len(d.buf))}
		m.rnames[i] = syscall.RawSockaddrInet6{}
		h := &m.rhdrs[i]
		h.hdr = syscall.Msghdr{
			Name:    (*byte)(unsafe.Pointer(&m.rnames[i])),
			Namelen: uint32(unsafe.Sizeof(m.rnames[i])),
			Iov:     &m.riovs[i],
			Iovlen:  1,
		}
		h.msgLen = 0
	}
	var n int
	var operr syscall.Errno
	err := m.rc.Read(func(fd uintptr) bool {
		r1, _, e := syscall.Syscall6(sysRecvmmsg, fd,
			uintptr(unsafe.Pointer(&m.rhdrs[0])), uintptr(len(ms)),
			syscall.MSG_DONTWAIT, 0, 0)
		if e == syscall.EAGAIN {
			return false // park on the poller until readable
		}
		operr, n = e, int(r1)
		return true
	})
	if err != nil {
		return 0, err // socket closed
	}
	if operr != 0 {
		if operr == syscall.EINTR || operr == syscall.ECONNREFUSED {
			return 0, nil // transient; caller loops
		}
		return 0, operr
	}
	for i := 0; i < n; i++ {
		ms[i].n = int(m.rhdrs[i].msgLen)
		ms[i].addr = saToAddrPort(&m.rnames[i])
	}
	return n, nil
}

// writeBatch transmits every datagram in ms, issuing as few sendmmsg calls
// as the kernel allows. Per-datagram errors drop that datagram (UDP
// semantics; the protocol's reliability recovers).
func (m *mmsgIO) writeBatch(ms []*dgram) (int, error) {
	m.ensure(&m.whdrs, &m.wiovs, &m.wnames, len(ms))
	sent := 0
	for sent < len(ms) {
		batch := ms[sent:]
		for i, d := range batch {
			m.wiovs[i] = syscall.Iovec{Base: &d.buf[0], Len: uint64(d.n)}
			h := &m.whdrs[i]
			h.hdr = syscall.Msghdr{
				Name:    (*byte)(unsafe.Pointer(&m.wnames[i])),
				Namelen: m.putSockaddr(&m.wnames[i], d.addr),
				Iov:     &m.wiovs[i],
				Iovlen:  1,
			}
			h.msgLen = 0
		}
		var n int
		var operr syscall.Errno
		err := m.rc.Write(func(fd uintptr) bool {
			r1, _, e := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&m.whdrs[0])), uintptr(len(batch)),
				syscall.MSG_DONTWAIT, 0, 0)
			if e == syscall.EAGAIN {
				return false // park until writable
			}
			operr, n = e, int(r1)
			return true
		})
		if err != nil {
			return sent, err // socket closed
		}
		switch {
		case operr == syscall.EINTR:
			// retry the same span
		case operr != 0:
			sent++ // drop the offending datagram and keep the rest moving
		case n <= 0:
			sent++
		default:
			sent += n
		}
	}
	return sent, nil
}

// putSockaddr encodes ap into sa and returns the sockaddr length for the
// socket's family. v6 sockets take v4 destinations in 4-in-6 mapped form.
func (m *mmsgIO) putSockaddr(sa *syscall.RawSockaddrInet6, ap netip.AddrPort) uint32 {
	a := ap.Addr()
	if !m.v6 && a.Is4() {
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		*sa4 = syscall.RawSockaddrInet4{Family: syscall.AF_INET, Addr: a.As4()}
		putPort((*[2]byte)(unsafe.Pointer(&sa4.Port)), ap.Port())
		return uint32(unsafe.Sizeof(*sa4))
	}
	*sa = syscall.RawSockaddrInet6{Family: syscall.AF_INET6, Addr: a.As16()}
	putPort((*[2]byte)(unsafe.Pointer(&sa.Port)), ap.Port())
	return uint32(unsafe.Sizeof(*sa))
}

// putPort stores a port in network byte order independent of host
// endianness.
func putPort(b *[2]byte, port uint16) {
	b[0], b[1] = byte(port>>8), byte(port)
}

// saToAddrPort decodes a kernel-written sockaddr into a normalized (4-in-6
// unmapped) AddrPort.
func saToAddrPort(sa *syscall.RawSockaddrInet6) netip.AddrPort {
	switch sa.Family {
	case syscall.AF_INET:
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		p := (*[2]byte)(unsafe.Pointer(&sa4.Port))
		return netip.AddrPortFrom(netip.AddrFrom4(sa4.Addr), uint16(p[0])<<8|uint16(p[1]))
	case syscall.AF_INET6:
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		return netip.AddrPortFrom(netip.AddrFrom16(sa.Addr).Unmap(), uint16(p[0])<<8|uint16(p[1]))
	}
	return netip.AddrPort{}
}
