package udpnet

import (
	"sync/atomic"
)

// ring is a bounded lock-free multi-producer multi-consumer queue (Vyukov's
// bounded MPMC algorithm). Producers are Transport.Send callers — usually one
// goroutine at a time (the endpoint runs under its owner's lock) but the
// transport makes no such assumption — and the single consumer is the writer
// goroutine draining datagrams into sendmmsg batches. Push never blocks: a
// full ring reports failure and the caller drops the datagram, exactly like a
// full NIC queue; MTP's reliability layer recovers the loss.
type ring struct {
	mask  uint64
	cells []ringCell
	_     [48]byte // keep enq/deq on separate cache lines from the header
	enq   atomic.Uint64
	_     [56]byte
	deq   atomic.Uint64
}

type ringCell struct {
	seq atomic.Uint64
	val *dgram
}

// newRing returns a ring with the given capacity rounded up to a power of
// two (minimum 2).
func newRing(capacity int) *ring {
	n := 2
	for n < capacity {
		n <<= 1
	}
	r := &ring{mask: uint64(n - 1), cells: make([]ringCell, n)}
	for i := range r.cells {
		r.cells[i].seq.Store(uint64(i))
	}
	return r
}

// push enqueues d, reporting false when the ring is full.
func (r *ring) push(d *dgram) bool {
	pos := r.enq.Load()
	for {
		cell := &r.cells[pos&r.mask]
		seq := cell.seq.Load()
		switch {
		case seq == pos:
			if r.enq.CompareAndSwap(pos, pos+1) {
				cell.val = d
				cell.seq.Store(pos + 1)
				return true
			}
			pos = r.enq.Load()
		case seq < pos:
			return false // full: the cell still holds a value a lap behind
		default:
			pos = r.enq.Load()
		}
	}
}

// pop dequeues one datagram, reporting false when the ring is empty.
func (r *ring) pop() (*dgram, bool) {
	pos := r.deq.Load()
	for {
		cell := &r.cells[pos&r.mask]
		seq := cell.seq.Load()
		switch {
		case seq == pos+1:
			if r.deq.CompareAndSwap(pos, pos+1) {
				d := cell.val
				cell.val = nil
				cell.seq.Store(pos + r.mask + 1)
				return d, true
			}
			pos = r.deq.Load()
		case seq <= pos:
			return nil, false // empty
		default:
			pos = r.deq.Load()
		}
	}
}
