package udpnet

import (
	"net"
	"testing"
	"time"
)

func TestToAddrPort(t *testing.T) {
	if ap := toAddrPort(nil); ap.IsValid() {
		t.Fatalf("nil addr produced %v", ap)
	}
	ua := &net.UDPAddr{IP: net.ParseIP("::ffff:10.0.0.1"), Port: 99}
	if ap := toAddrPort(ua); !ap.Addr().Is4() || ap.Port() != 99 {
		t.Fatalf("4-in-6 UDPAddr not unmapped: %v", ap)
	}
	// Non-UDP addrs go through the string parse path.
	ta := &net.TCPAddr{IP: net.ParseIP("127.0.0.1"), Port: 8}
	if ap := toAddrPort(ta); !ap.IsValid() || ap.Port() != 8 {
		t.Fatalf("parseable addr rejected: %v", ap)
	}
	if ap := toAddrPort(memAddrStub("not-an-addrport")); ap.IsValid() {
		t.Fatalf("garbage addr produced %v", ap)
	}
}

type memAddrStub string

func (m memAddrStub) Network() string { return "mem" }
func (m memAddrStub) String() string  { return string(m) }

func TestWheelDoubleClose(t *testing.T) {
	w := NewWheel(time.Millisecond, 8)
	w.Close()
	w.Close() // second close is a no-op, not a panic
	// Scheduling on a closed wheel is ignored.
	tm := NewTimer(func() { t.Error("fired on closed wheel") })
	w.Schedule(tm, time.Millisecond)
}

func TestLossyDoubleClose(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLossy(pc, 1)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.WriteTo([]byte{1}, pc.LocalAddr()); err == nil {
		t.Fatal("write after close succeeded")
	}
}
