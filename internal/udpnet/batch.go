package udpnet

import (
	"net"
	"net/netip"
)

// dgram is one datagram in flight through the transport: a contiguous
// encoded buffer (header followed by payload) and the peer address. Outbound
// dgrams are pooled — Send fills one, the writer goroutine transmits it and
// returns it to the pool. Inbound dgrams are the reader's fixed buffer set,
// reused across batches (the packet callback contract is copy-what-you-keep,
// mirroring core.Inbound).
type dgram struct {
	buf  []byte // full capacity backing array
	n    int    // valid bytes
	addr netip.AddrPort
}

// batchIO reads and writes datagram batches on one socket. readBatch blocks
// until at least one datagram is available, fills ms[i].buf/.n/.addr for the
// first k entries, and returns k. writeBatch transmits ms and returns how
// many were sent. Implementations: mmsgIO (Linux recvmmsg/sendmmsg, many
// datagrams per syscall) and connIO (portable, one datagram per syscall).
type batchIO interface {
	readBatch(ms []*dgram) (int, error)
	writeBatch(ms []*dgram) (int, error)
}

// newBatchIO selects the best batch implementation for pc: the mmsg syscall
// path when pc is a real UDP socket on a supported platform, else the
// portable one-datagram-per-syscall fallback.
func newBatchIO(pc net.PacketConn) batchIO {
	if uc, ok := pc.(*net.UDPConn); ok {
		if io := newMmsgIO(uc); io != nil {
			return io
		}
	}
	return &connIO{pc: pc}
}

// connIO is the portable fallback: ReadFrom/WriteTo, one datagram per call.
// It also serves non-UDP net.PacketConns (the in-memory test network, lossy
// interposers), which is what keeps the protocol-level tests platform-
// independent.
type connIO struct {
	pc net.PacketConn
}

// readBatch reads exactly one datagram (the portable API has no way to read
// more without risking a block with data already in hand).
func (c *connIO) readBatch(ms []*dgram) (int, error) {
	m := ms[0]
	n, from, err := c.pc.ReadFrom(m.buf)
	if err != nil {
		return 0, err
	}
	m.n = n
	m.addr = toAddrPort(from)
	return 1, nil
}

// writeBatch writes every datagram, one syscall each.
func (c *connIO) writeBatch(ms []*dgram) (int, error) {
	sent := 0
	for _, m := range ms {
		if _, err := c.pc.WriteTo(m.buf[:m.n], net.UDPAddrFromAddrPort(m.addr)); err != nil {
			// Transient per-datagram errors (e.g. ICMP-induced ECONNREFUSED
			// on loopback) drop the datagram; reliability recovers it. A
			// closed socket surfaces on the next read.
			continue
		}
		sent++
	}
	return sent, nil
}

// toAddrPort converts a net.Addr to a normalized netip.AddrPort. Peer
// identity must be comparable and stable across the resolve and receive
// paths, so 4-in-6 mapped addresses are unmapped everywhere.
func toAddrPort(a net.Addr) netip.AddrPort {
	switch v := a.(type) {
	case *net.UDPAddr:
		ap := v.AddrPort()
		return netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
	default:
		if a == nil {
			return netip.AddrPort{}
		}
		ap, err := netip.ParseAddrPort(a.String())
		if err != nil {
			return netip.AddrPort{}
		}
		return netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
	}
}
