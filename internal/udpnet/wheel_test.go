package udpnet

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestWheelFiresNearDeadline(t *testing.T) {
	w := NewWheel(time.Millisecond, 64)
	defer w.Close()
	fired := make(chan time.Duration, 1)
	start := w.Now()
	tm := NewTimer(func() { fired <- w.Now() - start })
	w.Schedule(tm, 10*time.Millisecond)
	select {
	case d := <-fired:
		if d < 5*time.Millisecond || d > 150*time.Millisecond {
			t.Fatalf("fired after %v, want ~10ms", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
}

func TestWheelRotations(t *testing.T) {
	// Delay far beyond one lap of the wheel (8 slots × 1ms = 8ms horizon).
	w := NewWheel(time.Millisecond, 8)
	defer w.Close()
	fired := make(chan time.Duration, 1)
	start := w.Now()
	tm := NewTimer(func() { fired <- w.Now() - start })
	w.Schedule(tm, 40*time.Millisecond)
	select {
	case d := <-fired:
		if d < 30*time.Millisecond {
			t.Fatalf("multi-rotation timer fired early: %v", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("multi-rotation timer never fired")
	}
}

func TestWheelStopAndReschedule(t *testing.T) {
	w := NewWheel(time.Millisecond, 64)
	defer w.Close()
	var fires atomic.Int32
	tm := NewTimer(func() { fires.Add(1) })
	w.Schedule(tm, 5*time.Millisecond)
	w.Stop(tm)
	time.Sleep(30 * time.Millisecond)
	if n := fires.Load(); n != 0 {
		t.Fatalf("stopped timer fired %d times", n)
	}
	// Schedule replaces the pending deadline rather than adding one.
	w.Schedule(tm, 50*time.Millisecond)
	w.Schedule(tm, 5*time.Millisecond)
	time.Sleep(30 * time.Millisecond)
	if n := fires.Load(); n != 1 {
		t.Fatalf("rescheduled timer fired %d times, want 1", n)
	}
	// After an idle span the wheel re-anchors; a fresh schedule still fires.
	time.Sleep(20 * time.Millisecond)
	w.Schedule(tm, 5*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for fires.Load() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("post-idle timer never fired (fires=%d)", fires.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWheelManyTimers(t *testing.T) {
	w := NewWheel(time.Millisecond, 32)
	defer w.Close()
	const n = 200
	var fires atomic.Int32
	for i := 0; i < n; i++ {
		tm := NewTimer(func() { fires.Add(1) })
		w.Schedule(tm, time.Duration(1+i%25)*time.Millisecond)
	}
	deadline := time.Now().Add(5 * time.Second)
	for fires.Load() != n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d timers fired", fires.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}
}
