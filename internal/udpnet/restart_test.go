package udpnet_test

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mtp"
	"mtp/internal/check"
	"mtp/internal/simnet"
)

// incDelivery is one message observed at the soak sink, tagged with the sink
// incarnation that delivered it.
type incDelivery struct {
	inc     int
	srcPort uint16
	msgID   uint64
	data    []byte
}

// TestNodeSoakSinkRestartExactlyOnce is the crash-tolerance soak: mid-run,
// the sink node is torn down and a fresh incarnation (same UDP port, higher
// epoch) takes its place while senders keep pushing. The sender must detect
// the restart from the new incarnation's epoch, rewind its in-flight
// messages, and complete every send against the new incarnation.
//
// The exactly-once contract across a receiver crash is per (sender
// incarnation, receiver incarnation) pair: a message delivered just before
// the crash whose ACK died with the old incarnation is unavoidably delivered
// again by the new one — that window is inherent to any at-least-once
// transport. What must hold, and what the MsgRegistry ledgers verify:
//
//   - within each sink incarnation, every message is delivered at most once
//     (fresh duplicate-suppression state, byte-identical payloads);
//   - no message completed before the crash reappears in the new incarnation
//     (stale-epoch packets are dropped, completed messages are never rewound);
//   - every send eventually completes and is delivered by some incarnation.
func TestNodeSoakSinkRestartExactlyOnce(t *testing.T) {
	count := 4000
	if testing.Short() {
		count = 1000
	}
	const concurrency = 32
	restartAt := count / 2

	const (
		sinkEpoch1 = 50_000
		sinkEpoch2 = 50_001
	)

	var mu sync.Mutex
	var got []incDelivery
	var incarnation atomic.Int32
	incarnation.Store(1)
	onMessage := func(m mtp.Message) {
		mu.Lock()
		got = append(got, incDelivery{int(incarnation.Load()), m.SrcPort, m.ID, append([]byte(nil), m.Data...)})
		mu.Unlock()
	}

	sink1, err := mtp.NewNode(udpConn(t), mtp.Config{Port: 7, Epoch: sinkEpoch1, OnMessage: onMessage})
	if err != nil {
		t.Fatalf("sink1: %v", err)
	}
	sinkAddr := sink1.Addr().String()

	src, err := mtp.NewNode(udpConn(t), mtp.Config{Port: 9, RTO: 10 * time.Millisecond})
	if err != nil {
		t.Fatalf("src: %v", err)
	}
	defer src.Close()

	// Two ledgers, one per sink incarnation: every send registers in both,
	// every delivery validates against its incarnation's ledger. A duplicate
	// within an incarnation, a payload mismatch, or a delivery of something
	// never sent fails the corresponding ledger.
	const srcNode = simnet.NodeID(1)
	reg1, reg2 := check.NewMsgRegistry(), check.NewMsgRegistry()
	var regMu sync.Mutex
	sentIDs := make(map[uint64][]byte)

	payloadFor := func(i int) []byte {
		size := 200 + i%700
		if i%7 == 0 {
			size = 3000 // multi-packet: reassembly spans the restart
		}
		p := make([]byte, size)
		for j := range p {
			p[j] = byte(i + j)
		}
		return p
	}

	var sink2 *mtp.Node
	restart := func() {
		// Crash: the old incarnation vanishes with all its protocol state.
		if err := sink1.Close(); err != nil {
			t.Errorf("sink1 close: %v", err)
		}
		// Reboot on the same UDP address with the next epoch.
		pc, err := net.ListenPacket("udp", sinkAddr)
		if err != nil {
			t.Errorf("rebind %s: %v", sinkAddr, err)
			return
		}
		incarnation.Store(2)
		sink2, err = mtp.NewNode(pc, mtp.Config{Port: 7, Epoch: sinkEpoch2, OnMessage: onMessage})
		if err != nil {
			t.Errorf("sink2: %v", err)
		}
	}

	sem := make(chan struct{}, concurrency)
	var wg sync.WaitGroup
	var timeouts atomic.Int32
	for i := 0; i < count; i++ {
		if i == restartAt {
			restart()
			if t.Failed() {
				t.FailNow()
			}
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			data := payloadFor(i)
			out, err := src.Send(sinkAddr, 7, data)
			if err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
			regMu.Lock()
			err1 := reg1.RecordSend(srcNode, 9, out.ID, data)
			err2 := reg2.RecordSend(srcNode, 9, out.ID, data)
			sentIDs[out.ID] = data
			regMu.Unlock()
			if err1 != nil || err2 != nil {
				t.Errorf("record send %d: %v / %v", i, err1, err2)
			}
			select {
			case <-out.Done():
			case <-time.After(30 * time.Second):
				timeouts.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if sink2 != nil {
		defer sink2.Close()
	}
	if n := timeouts.Load(); n > 0 {
		t.Fatalf("%d messages never acknowledged across the restart", n)
	}

	// Drain: completions can race the last OnMessage callbacks briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= count || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	mu.Lock()
	defer mu.Unlock()
	deliveredIn := map[uint64][2]int{}
	for _, d := range got {
		var reg *check.MsgRegistry
		if d.inc == 1 {
			reg = reg1
		} else {
			reg = reg2
		}
		if err := reg.RecordDelivery(srcNode, d.srcPort, d.msgID, d.data); err != nil {
			t.Errorf("incarnation %d: %v", d.inc, err)
		}
		c := deliveredIn[d.msgID]
		c[d.inc-1]++
		deliveredIn[d.msgID] = c
	}
	// Completeness: every acknowledged send was delivered by some incarnation.
	for id := range sentIDs {
		c := deliveredIn[id]
		if c[0]+c[1] == 0 {
			t.Errorf("message %d acknowledged but never delivered", id)
		}
	}
	crossInc := 0
	for _, c := range deliveredIn {
		if c[0] > 0 && c[1] > 0 {
			crossInc++
		}
	}
	st := src.Stats()
	if st.EpochBumps != 1 {
		t.Errorf("sender observed %d epoch bumps, want 1", st.EpochBumps)
	}
	t.Logf("restart soak: %d msgs, %d deliveries (%d redelivered across the restart window), sender retx=%d bumps=%d staleDrops=%d",
		count, len(got), crossInc, st.PktsRetx, st.EpochBumps, st.StaleEpochDrops)
}

// TestNodeEpochAutoSeedMonotonic checks that successive NewNode calls in one
// process get strictly increasing incarnation epochs even within the same
// millisecond — the respawned-worker case.
func TestNodeEpochAutoSeedMonotonic(t *testing.T) {
	var prev uint32
	for i := 0; i < 5; i++ {
		n, err := mtp.NewNode(udpConn(t), mtp.Config{Port: uint16(10 + i)})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		ep := n.Epoch()
		n.Close()
		if ep == 0 {
			t.Fatalf("node %d auto-seeded epoch 0", i)
		}
		if prev != 0 && int32(ep-prev) <= 0 {
			t.Fatalf("node %d epoch %d not newer than %d", i, ep, prev)
		}
		prev = ep
	}
}
