// Real-socket transport tests: the batched loopback path, the lossy soak
// proving exactly-once delivery through drop/dup/reorder on real sockets,
// and the steady-state allocation gate.
package udpnet_test

import (
	"net"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mtp"
	"mtp/internal/check"
	"mtp/internal/simnet"
	"mtp/internal/udpnet"
	"mtp/internal/wire"
)

func udpConn(t *testing.T) *net.UDPConn {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	return pc.(*net.UDPConn)
}

// TestTransportLoopbackBatched drives the raw Transport pair over real UDP:
// every datagram must arrive intact, and the sender side must actually
// batch (fewer write syscalls than datagrams) under a burst.
func TestTransportLoopbackBatched(t *testing.T) {
	const count = 512
	recvd := make(chan uint64, count)
	var rx *udpnet.Transport
	var err error
	rx, err = udpnet.NewTransport(udpnet.Config{
		Conn: udpConn(t),
		OnPacket: func(from netip.AddrPort, hdr *wire.Header, data []byte) {
			if hdr.Type == wire.TypeData && len(data) == 64 && data[0] == byte(hdr.MsgID) {
				recvd <- hdr.MsgID
			}
		},
	})
	if err != nil {
		t.Fatalf("rx transport: %v", err)
	}
	defer rx.Close()
	rx.Start()

	tx, err := udpnet.NewTransport(udpnet.Config{
		Conn:     udpConn(t),
		OnPacket: func(netip.AddrPort, *wire.Header, []byte) {},
	})
	if err != nil {
		t.Fatalf("tx transport: %v", err)
	}
	defer tx.Close()
	tx.Start()

	dst := rx.LocalAddrPort()
	payload := make([]byte, 64)
	hdr := wire.Header{Type: wire.TypeData, SrcPort: 9, DstPort: 7, MsgPkts: 1, MsgBytes: 64, PktLen: 64}
	for i := 0; i < count; i++ {
		hdr.MsgID = uint64(i)
		payload[0] = byte(i)
		if !tx.Send(dst, &hdr, payload) {
			t.Fatalf("send %d dropped at the ring", i)
		}
	}
	seen := make(map[uint64]bool)
	timeout := time.After(5 * time.Second)
	for len(seen) < count {
		select {
		case id := <-recvd:
			seen[id] = true
		case <-timeout:
			t.Fatalf("received %d/%d datagrams", len(seen), count)
		}
	}
	ts, rs := tx.Stats(), rx.Stats()
	if ts.DatagramsOut != count {
		t.Fatalf("tx datagrams %d, want %d", ts.DatagramsOut, count)
	}
	if rs.DatagramsIn < count {
		t.Fatalf("rx datagrams %d, want >= %d", rs.DatagramsIn, count)
	}
	if ts.BatchesOut >= ts.DatagramsOut {
		t.Errorf("no write batching: %d syscalls for %d datagrams", ts.BatchesOut, ts.DatagramsOut)
	}
	t.Logf("tx: %d datagrams in %d syscalls (max batch %d); rx: %d in %d (max %d)",
		ts.DatagramsOut, ts.BatchesOut, ts.MaxBatchOut, rs.DatagramsIn, rs.BatchesIn, rs.MaxBatchIn)
}

// delivery is one message observed at the soak receiver.
type delivery struct {
	srcPort uint16
	msgID   uint64
	data    []byte
}

// TestNodeSoakLossyExactlyOnce runs the full node stack between two real
// sockets with a userspace interposer injecting drop, duplication, and
// reordering on both directions, then audits every message against the
// shared check ledger: delivered exactly once, byte-identical.
func TestNodeSoakLossyExactlyOnce(t *testing.T) {
	count := 10000
	if testing.Short() {
		count = 2000
	}
	const concurrency = 64

	lossA := udpnet.NewLossy(udpConn(t), 41)
	lossB := udpnet.NewLossy(udpConn(t), 42)
	for _, l := range []*udpnet.Lossy{lossA, lossB} {
		l.Drop, l.Dup, l.Reorder = 0.03, 0.02, 0.02
	}

	var mu sync.Mutex
	var got []delivery
	sink, err := mtp.NewNode(lossB, mtp.Config{Port: 7, OnMessage: func(m mtp.Message) {
		mu.Lock()
		got = append(got, delivery{m.SrcPort, m.ID, append([]byte(nil), m.Data...)})
		mu.Unlock()
	}})
	if err != nil {
		t.Fatalf("sink: %v", err)
	}
	defer sink.Close()

	src, err := mtp.NewNode(lossA, mtp.Config{Port: 9, RTO: 10 * time.Millisecond})
	if err != nil {
		t.Fatalf("src: %v", err)
	}
	defer src.Close()

	reg := check.NewMsgRegistry()
	const srcNode = simnet.NodeID(1)
	target := sink.Addr().String()

	// Mixed sizes: mostly single-packet, some multi-packet so reassembly,
	// NACKs, and per-packet retransmission all run under injected faults.
	payloadFor := func(i int) []byte {
		size := 200 + i%700
		if i%10 == 0 {
			size = 3000 // 3 packets at the default 1200-byte MSS
		}
		p := make([]byte, size)
		for j := range p {
			p[j] = byte(i + j)
		}
		return p
	}

	sem := make(chan struct{}, concurrency)
	var wg sync.WaitGroup
	var timeouts atomic.Int32
	var regMu sync.Mutex
	for i := 0; i < count; i++ {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			data := payloadFor(i)
			out, err := src.Send(target, 7, data)
			if err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
			regMu.Lock()
			rerr := reg.RecordSend(srcNode, 9, out.ID, data)
			regMu.Unlock()
			if rerr != nil {
				t.Errorf("record send %d: %v", i, rerr)
			}
			select {
			case <-out.Done():
			case <-time.After(30 * time.Second):
				timeouts.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if n := timeouts.Load(); n > 0 {
		t.Fatalf("%d messages never acknowledged", n)
	}
	// Every message is end-to-end acknowledged, which MTP only does after
	// delivery, so the receiver log is complete; reconcile it with the
	// ledger.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= count || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != count {
		t.Fatalf("receiver saw %d messages, want %d", len(got), count)
	}
	for _, d := range got {
		if err := reg.RecordDelivery(srcNode, d.srcPort, d.msgID, d.data); err != nil {
			t.Errorf("%v", err)
		}
	}
	if n := reg.Undelivered(); n != 0 {
		t.Errorf("%d acknowledged messages never delivered", n)
	}
	aDrops, aDups, aReord := lossA.Counts()
	bDrops, bDups, bReord := lossB.Counts()
	if aDrops == 0 || aDups == 0 || aReord == 0 {
		t.Errorf("fault injection idle: drops=%d dups=%d reorders=%d", aDrops, aDups, aReord)
	}
	st := src.Stats()
	if st.PktsRetx == 0 {
		t.Error("no retransmissions despite injected loss")
	}
	t.Logf("soak: %d msgs, src retx=%d timeouts=%d; injected drops=%d dups=%d reorders=%d",
		count, st.PktsRetx, st.Timeouts, aDrops+bDrops, aDups+bDups, aReord+bReord)
}

// TestUDPEnvSteadyStateAllocs gates allocations per message round-trip over
// real sockets. The transport itself is allocation-free at steady state
// (pooled send buffers, fixed receive buffers, reused headers); the budget
// below is the public-API cost per message (Outgoing handle, done channel,
// completed-message delivery) plus scheduler noise — a per-datagram buffer
// or header allocation in the transport would blow straight through it.
func TestUDPEnvSteadyStateAllocs(t *testing.T) {
	var received atomic.Int64
	sink, err := mtp.NewNode(udpConn(t), mtp.Config{Port: 7, OnMessage: func(m mtp.Message) {
		received.Add(1)
	}})
	if err != nil {
		t.Fatalf("sink: %v", err)
	}
	defer sink.Close()
	src, err := mtp.NewNode(udpConn(t), mtp.Config{Port: 9})
	if err != nil {
		t.Fatalf("src: %v", err)
	}
	defer src.Close()

	target := sink.Addr().String()
	payload := make([]byte, 512)
	send := func(n int) {
		for i := 0; i < n; i++ {
			out, err := src.Send(target, 7, payload)
			if err != nil {
				t.Fatalf("send: %v", err)
			}
			select {
			case <-out.Done():
			case <-time.After(10 * time.Second):
				t.Fatal("message not acknowledged")
			}
		}
	}
	send(300) // warm pools, peer caches, cc state

	const msgs = 2000
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	send(msgs)
	runtime.ReadMemStats(&after)
	perMsg := float64(after.Mallocs-before.Mallocs) / msgs
	t.Logf("allocs/msg = %.1f", perMsg)
	if perMsg > 30 {
		t.Fatalf("allocs/msg = %.1f, want <= 30 (transport must stay pooled)", perMsg)
	}
}

// TestTransportIPv6Loopback runs the batched path over ::1, covering the
// AF_INET6 sockaddr encode/decode legs that the v4 tests never touch.
func TestTransportIPv6Loopback(t *testing.T) {
	pc6 := func() *net.UDPConn {
		pc, err := net.ListenPacket("udp6", "[::1]:0")
		if err != nil {
			t.Skipf("no IPv6 loopback: %v", err)
		}
		return pc.(*net.UDPConn)
	}
	const count = 64
	recvd := make(chan uint64, count)
	rx, err := udpnet.NewTransport(udpnet.Config{
		Conn: pc6(),
		OnPacket: func(from netip.AddrPort, hdr *wire.Header, data []byte) {
			if from.Addr().Is6() && hdr.Type == wire.TypeData {
				recvd <- hdr.MsgID
			}
		},
	})
	if err != nil {
		t.Fatalf("rx: %v", err)
	}
	defer rx.Close()
	rx.Start()
	tx, err := udpnet.NewTransport(udpnet.Config{Conn: pc6(), OnPacket: func(netip.AddrPort, *wire.Header, []byte) {}})
	if err != nil {
		t.Fatalf("tx: %v", err)
	}
	defer tx.Close()
	tx.Start()

	hdr := wire.Header{Type: wire.TypeData, SrcPort: 1, DstPort: 2, MsgPkts: 1, MsgBytes: 8, PktLen: 8}
	for i := 0; i < count; i++ {
		hdr.MsgID = uint64(i)
		if !tx.Send(rx.LocalAddrPort(), &hdr, make([]byte, 8)) {
			t.Fatalf("send %d dropped", i)
		}
	}
	seen := make(map[uint64]bool)
	timeout := time.After(5 * time.Second)
	for len(seen) < count {
		select {
		case id := <-recvd:
			seen[id] = true
		case <-timeout:
			t.Fatalf("got %d/%d over ::1", len(seen), count)
		}
	}
}

// TestTransportEdgePaths covers the non-happy Send/SetTimer branches:
// encode failure, ring overflow accounting, and timer cancellation.
func TestTransportEdgePaths(t *testing.T) {
	fired := make(chan struct{}, 4)
	tr, err := udpnet.NewTransport(udpnet.Config{
		Conn:     udpConn(t),
		RingSize: 2,
		OnPacket: func(netip.AddrPort, *wire.Header, []byte) {},
		OnTimer:  func() { fired <- struct{}{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Encode error: an invalid packet type fails Header.Validate.
	bad := wire.Header{Type: 0xff}
	if tr.Send(netip.MustParseAddrPort("127.0.0.1:9"), &bad, nil) {
		t.Fatal("invalid header sent")
	}
	if tr.Stats().EncodeErrors != 1 {
		t.Fatalf("encode errors = %d", tr.Stats().EncodeErrors)
	}
	// Ring overflow: the writer goroutine is not started, so pushes past
	// the ring capacity must drop and count.
	good := wire.Header{Type: wire.TypeData, SrcPort: 1, DstPort: 2, MsgPkts: 1, MsgBytes: 1, PktLen: 1}
	dst := netip.MustParseAddrPort("127.0.0.1:9")
	sent := 0
	for i := 0; i < 5; i++ {
		if tr.Send(dst, &good, []byte{1}) {
			sent++
		}
	}
	if sent != 2 || tr.Stats().RingFullDrops != 3 {
		t.Fatalf("sent=%d drops=%d, want 2/3", sent, tr.Stats().RingFullDrops)
	}
	// Timer: cancel must stop a pending deadline; re-arm must fire.
	tr.SetTimer(tr.Now() + 5*time.Millisecond)
	tr.SetTimer(0) // cancel
	select {
	case <-fired:
		t.Fatal("cancelled timer fired")
	case <-time.After(30 * time.Millisecond):
	}
	tr.SetTimer(tr.Now() + 2*time.Millisecond)
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("re-armed timer never fired")
	}
	tr.Start()
	if err := tr.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Close is idempotent and Send after close drops at the ring or pool
	// without panicking.
	if err := tr.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	tr.SetTimer(tr.Now() + time.Millisecond)
}

// TestNewTransportValidation covers the constructor's error branches.
func TestNewTransportValidation(t *testing.T) {
	if _, err := udpnet.NewTransport(udpnet.Config{}); err == nil {
		t.Fatal("nil conn accepted")
	}
	if _, err := udpnet.NewTransport(udpnet.Config{Conn: udpConn(t)}); err == nil {
		t.Fatal("nil OnPacket accepted")
	}
}
