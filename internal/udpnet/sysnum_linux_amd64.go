package udpnet

// Linux/amd64 syscall numbers for the mmsg pair; sendmmsg postdates the
// frozen stdlib syscall tables.
const (
	sysRecvmmsg = 299
	sysSendmmsg = 307
)
