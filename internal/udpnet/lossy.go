package udpnet

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// Lossy wraps a net.PacketConn and injects seed-deterministic drop,
// duplication, and reordering on the send side — a userspace interposer for
// soak-testing the real-socket stack without network namespaces. Wrapping
// the sender means the wire, the kernel, and the receiving transport all see
// genuinely hostile traffic.
//
// Reordering holds a datagram back and releases it after HoldFor (default
// 2ms) from a background goroutine, so a held packet really does arrive
// behind packets sent after it.
type Lossy struct {
	net.PacketConn

	// Drop, Dup, Reorder are per-datagram probabilities in [0,1).
	Drop, Dup, Reorder float64
	// HoldFor is the reorder delay. Zero means 2ms.
	HoldFor time.Duration

	mu     sync.Mutex
	rng    *rand.Rand
	wg     sync.WaitGroup
	closed bool

	drops, dups, reorders int
}

// Counts reports injected events so far. Safe to call while traffic flows
// (node close still trickles ACKs after a test's send phase ends).
func (l *Lossy) Counts() (drops, dups, reorders int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.drops, l.dups, l.reorders
}

// NewLossy wraps pc with deterministic fault injection seeded by seed.
func NewLossy(pc net.PacketConn, seed int64) *Lossy {
	return &Lossy{PacketConn: pc, rng: rand.New(rand.NewSource(seed))}
}

// WriteTo implements net.PacketConn with fault injection.
func (l *Lossy) WriteTo(p []byte, addr net.Addr) (int, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, net.ErrClosed
	}
	roll := l.rng.Float64()
	switch {
	case roll < l.Drop:
		l.drops++
		l.mu.Unlock()
		return len(p), nil // swallowed
	case roll < l.Drop+l.Dup:
		l.dups++
		l.mu.Unlock()
		n, err := l.PacketConn.WriteTo(p, addr)
		if err != nil {
			return n, err
		}
		return l.PacketConn.WriteTo(p, addr)
	case roll < l.Drop+l.Dup+l.Reorder:
		l.reorders++
		hold := l.HoldFor
		if hold == 0 {
			hold = 2 * time.Millisecond
		}
		cp := append([]byte(nil), p...)
		l.wg.Add(1)
		l.mu.Unlock()
		time.AfterFunc(hold, func() {
			defer l.wg.Done()
			l.mu.Lock()
			closed := l.closed
			l.mu.Unlock()
			if !closed {
				_, _ = l.PacketConn.WriteTo(cp, addr)
			}
		})
		return len(p), nil
	}
	l.mu.Unlock()
	return l.PacketConn.WriteTo(p, addr)
}

// Close waits for held (reordered) datagrams before closing the socket so a
// late release never writes to a closed conn.
func (l *Lossy) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	l.wg.Wait()
	return l.PacketConn.Close()
}
