package udpnet

import (
	"sync"
	"testing"
)

func TestRingFIFOAndCapacity(t *testing.T) {
	r := newRing(4) // capacity 4
	ds := make([]dgram, 5)
	for i := 0; i < 4; i++ {
		if !r.push(&ds[i]) {
			t.Fatalf("push %d failed on non-full ring", i)
		}
	}
	if r.push(&ds[4]) {
		t.Fatal("push succeeded on full ring")
	}
	for i := 0; i < 4; i++ {
		d, ok := r.pop()
		if !ok || d != &ds[i] {
			t.Fatalf("pop %d: got %p ok=%v, want %p", i, d, ok, &ds[i])
		}
	}
	if _, ok := r.pop(); ok {
		t.Fatal("pop succeeded on empty ring")
	}
	// Wraparound: interleave past the capacity boundary.
	for lap := 0; lap < 10; lap++ {
		for i := 0; i < 3; i++ {
			if !r.push(&ds[i]) {
				t.Fatalf("lap %d push %d failed", lap, i)
			}
		}
		for i := 0; i < 3; i++ {
			if d, ok := r.pop(); !ok || d != &ds[i] {
				t.Fatalf("lap %d pop %d wrong", lap, i)
			}
		}
	}
}

func TestRingConcurrentProducers(t *testing.T) {
	const producers = 4
	const perProducer = 10000
	r := newRing(256)
	var wg sync.WaitGroup
	// Tag each dgram with a producer/sequence pair via the n field.
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				d := &dgram{n: p<<20 | i}
				for !r.push(d) {
				}
			}
		}(p)
	}
	got := make([]int, 0, producers*perProducer)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for len(got) < producers*perProducer {
			if d, ok := r.pop(); ok {
				got = append(got, d.n)
			}
		}
	}()
	wg.Wait()
	<-done
	// Every element exactly once, and per-producer order preserved.
	lastSeq := make([]int, producers)
	for i := range lastSeq {
		lastSeq[i] = -1
	}
	seen := make(map[int]bool, len(got))
	for _, v := range got {
		if seen[v] {
			t.Fatalf("value %x dequeued twice", v)
		}
		seen[v] = true
		p, seq := v>>20, v&(1<<20-1)
		if seq <= lastSeq[p] {
			t.Fatalf("producer %d order violated: %d after %d", p, seq, lastSeq[p])
		}
		lastSeq[p] = seq
	}
	if len(got) != producers*perProducer {
		t.Fatalf("dequeued %d values, want %d", len(got), producers*perProducer)
	}
}
