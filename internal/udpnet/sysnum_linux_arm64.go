package udpnet

// Linux/arm64 syscall numbers for the mmsg pair.
const (
	sysRecvmmsg = 243
	sysSendmmsg = 269
)
