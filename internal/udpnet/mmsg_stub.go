//go:build !(linux && (amd64 || arm64))

package udpnet

import "net"

// newMmsgIO reports no batched syscall support on this platform; the
// transport falls back to one datagram per syscall (connIO).
func newMmsgIO(uc *net.UDPConn) batchIO { return nil }
