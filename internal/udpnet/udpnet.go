// Package udpnet is the real-socket backend for the MTP endpoint: a
// batched, pooled, wall-clock implementation of the I/O half of core.Env
// over UDP.
//
// The simulator drives the endpoint under virtual time; this package drives
// the identical protocol code from real sockets:
//
//   - Batched syscalls. On Linux a reader goroutine pulls up to Config.Batch
//     datagrams per recvmmsg call into a fixed set of receive buffers, and a
//     writer goroutine drains the outbound ring into sendmmsg batches.
//     Elsewhere (and over non-UDP net.PacketConns such as test interposers)
//     the same loops run one datagram per syscall.
//   - Zero-copy decode. Each received datagram is decoded in place with
//     wire.DecodeInto into a single reused header; the packet callback gets
//     buffer-backed slices and must copy what it keeps — the same ownership
//     contract as core.Inbound, which is what lets receive buffers recycle
//     without ever escaping to the heap.
//   - A lock-free outbound ring. Send encodes header+payload into a pooled
//     buffer and pushes it onto a bounded MPMC ring, so the protocol engine
//     never performs a syscall while its owner's lock is held. A full ring
//     drops the datagram like a full NIC queue; reliability recovers it.
//   - A timer wheel. SetTimer deadlines are served by a shared hashed
//     timing wheel (one goroutine per process, not one runtime timer per
//     endpoint), at one-tick resolution.
//
// The public mtp.Node rebases onto a Transport whenever its PacketConn
// carries UDP addresses; internal/platform deploys multi-process load tests
// over it.
package udpnet

import (
	"errors"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"mtp/internal/wire"
)

// Config parameterizes a Transport.
type Config struct {
	// Conn is the socket. A *net.UDPConn engages the batched syscall path
	// on supported platforms; any other net.PacketConn (lossy interposers,
	// test wrappers) runs one datagram per syscall.
	Conn net.PacketConn

	// Batch caps datagrams per syscall in both directions. Default 32.
	Batch int

	// RingSize is the outbound ring capacity (rounded up to a power of
	// two). Default 1024.
	RingSize int

	// MaxDatagram sizes receive buffers and the initial capacity of pooled
	// send buffers. It must cover header + MSS. Default 2048 (fits the
	// default 1200-byte MSS with generous header room).
	MaxDatagram int

	// SocketBuffer sizes the kernel send/receive buffers when Conn is a
	// real UDP socket. Batched senders burst far faster than a default
	// ~200KB rmem drains, and UDP silently drops on overflow even over
	// loopback. Default 4MB; negative leaves the kernel default.
	SocketBuffer int

	// Wheel, when non-nil, shares a process-wide timer wheel; otherwise the
	// transport owns a private one.
	Wheel *Wheel

	// OnPacket delivers one decoded datagram. hdr and data are valid only
	// during the call (copy what you keep). Called from the reader
	// goroutine.
	OnPacket func(from netip.AddrPort, hdr *wire.Header, data []byte)

	// OnBatchEnd, when non-nil, runs after each inbound batch has been
	// delivered — the natural point to flush work staged by OnPacket
	// (completed-message callbacks, ACK coalescing).
	OnBatchEnd func()

	// OnTimer runs when the SetTimer deadline arrives. Called from the
	// wheel goroutine.
	OnTimer func()
}

// Stats counts transport-level events. Snapshot with Transport.Stats.
type Stats struct {
	DatagramsIn, DatagramsOut uint64
	// BatchesIn/Out count syscalls (recvmmsg/sendmmsg or their fallback
	// equivalents); DatagramsIn/BatchesIn is the achieved read batching.
	BatchesIn, BatchesOut uint64
	// MaxBatchIn/Out are the largest single batches observed.
	MaxBatchIn, MaxBatchOut uint64
	// RingFullDrops counts datagrams dropped because the outbound ring was
	// full (backpressure; recovered by retransmission).
	RingFullDrops uint64
	// DecodeErrors counts inbound datagrams that were not MTP packets.
	DecodeErrors uint64
	// EncodeErrors counts outbound packets whose header failed to encode.
	EncodeErrors uint64
}

// Transport runs batched socket I/O and timers for one endpoint.
type Transport struct {
	cfg      Config
	io       batchIO
	wheel    *Wheel
	ownWheel bool
	timer    *Timer

	out     *ring
	pool    sync.Pool // *dgram send buffers
	sendSig chan struct{}
	done    chan struct{}
	wg      sync.WaitGroup
	closed  atomic.Bool

	dgramsIn, dgramsOut   atomic.Uint64
	batchesIn, batchesOut atomic.Uint64
	maxIn, maxOut         atomic.Uint64
	ringDrops             atomic.Uint64
	decodeErrs, encErrs   atomic.Uint64
}

// NewTransport validates cfg and builds a transport. Call Start to spawn the
// I/O goroutines.
func NewTransport(cfg Config) (*Transport, error) {
	if cfg.Conn == nil {
		return nil, errors.New("udpnet: nil Conn")
	}
	if cfg.OnPacket == nil {
		return nil, errors.New("udpnet: nil OnPacket")
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 32
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 1024
	}
	if cfg.MaxDatagram <= 0 {
		cfg.MaxDatagram = 2048
	}
	if cfg.SocketBuffer == 0 {
		cfg.SocketBuffer = 4 << 20
	}
	if uc, ok := cfg.Conn.(*net.UDPConn); ok && cfg.SocketBuffer > 0 {
		// Best effort: the kernel clamps to net.core.{r,w}mem_max.
		_ = uc.SetReadBuffer(cfg.SocketBuffer)
		_ = uc.SetWriteBuffer(cfg.SocketBuffer)
	}
	t := &Transport{
		cfg:     cfg,
		io:      newBatchIO(cfg.Conn),
		wheel:   cfg.Wheel,
		out:     newRing(cfg.RingSize),
		sendSig: make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	if t.wheel == nil {
		t.wheel = NewWheel(0, 0)
		t.ownWheel = true
	}
	if cfg.OnTimer != nil {
		t.timer = NewTimer(cfg.OnTimer)
	}
	t.pool.New = func() any {
		return &dgram{buf: make([]byte, 0, cfg.MaxDatagram)}
	}
	return t, nil
}

// Start spawns the reader and writer goroutines.
func (t *Transport) Start() {
	t.wg.Add(2)
	go t.readLoop()
	go t.writeLoop()
}

// LocalAddrPort returns the socket's bound address as a normalized
// AddrPort (zero when the conn's address is not UDP-shaped).
func (t *Transport) LocalAddrPort() netip.AddrPort {
	return toAddrPort(t.cfg.Conn.LocalAddr())
}

// Now returns the transport's monotonic clock (the wheel's epoch). Feed
// endpoint events with this clock so SetTimer deadlines share a timebase.
func (t *Transport) Now() time.Duration { return t.wheel.Now() }

// SetTimer arms Config.OnTimer to run at absolute wheel time `at`
// (replacing any previous deadline); non-positive cancels. Mirrors
// core.Env.SetTimer semantics.
func (t *Transport) SetTimer(at time.Duration) {
	if t.timer == nil {
		return
	}
	if at <= 0 || t.closed.Load() {
		t.wheel.Stop(t.timer)
		return
	}
	t.wheel.Schedule(t.timer, at-t.wheel.Now())
}

// Send encodes hdr+payload into a pooled buffer and queues it for the
// writer goroutine. It never blocks and never performs a syscall; it
// reports false when the datagram was dropped (ring full or encode error).
// hdr and payload are not retained past the call.
func (t *Transport) Send(dst netip.AddrPort, hdr *wire.Header, payload []byte) bool {
	d := t.pool.Get().(*dgram)
	buf, err := hdr.Encode(d.buf[:0])
	if err != nil {
		t.encErrs.Add(1)
		t.pool.Put(d)
		return false
	}
	buf = append(buf, payload...)
	d.buf = buf[:cap(buf)]
	d.n = len(buf)
	d.addr = dst
	if !t.out.push(d) {
		t.ringDrops.Add(1)
		t.pool.Put(d)
		return false
	}
	select {
	case t.sendSig <- struct{}{}:
	default:
	}
	return true
}

// Close stops the goroutines and closes the socket. Safe to call twice.
func (t *Transport) Close() error {
	if !t.closed.CompareAndSwap(false, true) {
		return nil
	}
	if t.timer != nil {
		t.wheel.Stop(t.timer)
	}
	err := t.cfg.Conn.Close() // unblocks the reader
	close(t.done)             // unblocks the writer
	t.wg.Wait()
	if t.ownWheel {
		t.wheel.Close()
	}
	return err
}

// Stats snapshots the transport counters.
func (t *Transport) Stats() Stats {
	return Stats{
		DatagramsIn:   t.dgramsIn.Load(),
		DatagramsOut:  t.dgramsOut.Load(),
		BatchesIn:     t.batchesIn.Load(),
		BatchesOut:    t.batchesOut.Load(),
		MaxBatchIn:    t.maxIn.Load(),
		MaxBatchOut:   t.maxOut.Load(),
		RingFullDrops: t.ringDrops.Load(),
		DecodeErrors:  t.decodeErrs.Load(),
		EncodeErrors:  t.encErrs.Load(),
	}
}

// maxUpdate raises m to v (single-writer counters; a plain load/store race
// window is acceptable for a high-water mark, but keep it atomic anyway).
func maxUpdate(m *atomic.Uint64, v uint64) {
	for {
		cur := m.Load()
		if v <= cur || m.CompareAndSwap(cur, v) {
			return
		}
	}
}

// readLoop owns the fixed receive buffer set: recvmmsg fills up to Batch of
// them per syscall, each datagram is decoded in place and delivered, and the
// buffers go right back into the next batch — a free list with zero
// steady-state allocation.
func (t *Transport) readLoop() {
	defer t.wg.Done()
	bufs := make([]*dgram, t.cfg.Batch)
	for i := range bufs {
		bufs[i] = &dgram{buf: make([]byte, t.cfg.MaxDatagram)}
	}
	var hdr wire.Header
	for {
		n, err := t.io.readBatch(bufs)
		if err != nil {
			return // socket closed
		}
		if n == 0 {
			continue // transient error inside the batch read
		}
		t.batchesIn.Add(1)
		t.dgramsIn.Add(uint64(n))
		maxUpdate(&t.maxIn, uint64(n))
		for i := 0; i < n; i++ {
			d := bufs[i]
			consumed, derr := wire.DecodeInto(&hdr, d.buf[:d.n])
			if derr != nil || !d.addr.IsValid() {
				t.decodeErrs.Add(1)
				continue
			}
			var data []byte
			if consumed < d.n {
				data = d.buf[consumed:d.n]
			}
			t.cfg.OnPacket(d.addr, &hdr, data)
		}
		if t.cfg.OnBatchEnd != nil {
			t.cfg.OnBatchEnd()
		}
	}
}

// writeLoop drains the outbound ring into sendmmsg batches and recycles the
// buffers.
func (t *Transport) writeLoop() {
	defer t.wg.Done()
	batch := make([]*dgram, 0, t.cfg.Batch)
	for {
		batch = batch[:0]
		for len(batch) < cap(batch) {
			d, ok := t.out.pop()
			if !ok {
				break
			}
			batch = append(batch, d)
		}
		if len(batch) == 0 {
			select {
			case <-t.sendSig:
				continue
			case <-t.done:
				return
			}
		}
		sent, err := t.io.writeBatch(batch)
		t.batchesOut.Add(1)
		t.dgramsOut.Add(uint64(sent))
		maxUpdate(&t.maxOut, uint64(len(batch)))
		for _, d := range batch {
			t.pool.Put(d)
		}
		if err != nil {
			return // socket closed
		}
	}
}
