// Package scenario is the randomized counterpart of the invariant harness in
// internal/check: a seeded generator samples small fabrics (internal/topo),
// workloads, and fault schedules (internal/fault); a runner executes each
// sampled scenario with every MTP endpoint and the whole network under the
// invariant checker; and a shrinker reduces a violating scenario — fewer
// hosts, fewer faults, fewer messages, a shorter horizon — to a minimal
// configuration that still reproduces, printable as a one-line `mtpexp -exp
// scenario` repro.
//
// Everything is a pure function of (seed, Overrides): the same pair always
// generates, runs, and fails identically, which is what makes a shrunken seed
// a durable regression test (see regress_test.go).
package scenario

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"mtp/internal/cc"
	"mtp/internal/check"
	"mtp/internal/core"
	"mtp/internal/fault"
	"mtp/internal/offload"
	"mtp/internal/simhost"
	"mtp/internal/simnet"
	"mtp/internal/topo"
)

// Overrides caps the generator's sampled dimensions. Zero values leave a
// dimension free (MaxFaults uses -1 for "free" so it can be capped to zero).
// The shrinker works entirely in this space: it never edits a Spec, only
// tightens caps and regenerates from the same seed.
type Overrides struct {
	// Topo forces the topology ("leafspine" or "fattree"); empty samples it.
	Topo string
	// Leaves/Spines/HostsPerLeaf cap the leaf-spine shape when positive.
	Leaves, Spines, HostsPerLeaf int
	// MaxFaults caps the fault count when >= 0; -1 leaves it free.
	MaxFaults int
	// Messages caps the per-host message count when positive.
	Messages int
	// Horizon caps the simulated duration when positive.
	Horizon time.Duration
	// Offload opts in to placing a sampled in-network device (cache or
	// detect-mode IDS) on one fabric switch, so sweeps exercise interposers —
	// including crash-reset — under the full invariant set. Off by default;
	// its rng draws come after every other dimension's, so enabling it never
	// perturbs the rest of the sampled scenario.
	Offload bool
	// Rival opts in to sampling the transport under test: instead of MTP
	// endpoints, the sampled workload runs over one of the rival baselines
	// (dctcp, mptcp-lia, mptcp-olia, quic) with the network-level invariants
	// still checked. Its rng draw comes after every other dimension's
	// (including Offload's), so enabling it never perturbs the rest of the
	// sampled scenario and pre-existing repro seeds stay valid.
	Rival bool
}

// NoOverrides returns the all-free override set.
func NoOverrides() Overrides { return Overrides{MaxFaults: -1} }

// MsgSpec is one planned message.
type MsgSpec struct {
	Src, Dst int
	Size     int
	Start    time.Duration
	// Payload selects a real (CRC-checked) payload over a synthetic one.
	Payload bool
	Pri     uint8
}

// FaultSpec is one planned fault. Targets are indices resolved modulo the
// available target set at run time, so the same spec stays valid as the
// shrinker removes hosts and trunks.
type FaultSpec struct {
	// Kind is one of linkdown, blackhole, crash, flap, degrade, corrupt,
	// duplicate.
	Kind string
	// Target indexes the trunk list (or the switch list for crash).
	Target int
	// Edge targets a host access link instead of a trunk.
	Edge    bool
	At, Dur time.Duration
	// P is the per-packet probability (corrupt, duplicate) or the rate
	// factor (degrade).
	P float64
}

// Spec is one fully sampled scenario.
type Spec struct {
	Seed int64

	Topo                         string
	Leaves, Spines, HostsPerLeaf int
	K                            int // fat-tree radix
	Hosts                        int

	Policy string // "ecmp" or "msglb"
	CC     cc.Kind
	// MaxWindowMSS caps the congestion window in MSS units; 0 = unbounded.
	MaxWindowMSS int
	QueueCap     int
	ECNK         int

	Horizon time.Duration
	Msgs    []MsgSpec
	Faults  []FaultSpec

	// Offload names the sampled in-network device ("cache" or "ids"); empty
	// means none. OffloadTarget indexes the switch it lands on.
	Offload       string
	OffloadTarget int

	// Rival names the sampled baseline transport running the workload in
	// place of MTP ("dctcp", "mptcp-lia", "mptcp-olia", "quic"); empty runs
	// MTP endpoints as usual.
	Rival string
}

// msgSizes is the sampled message-size menu: sub-MSS, one MSS, small
// multi-packet, and bulk.
var msgSizes = []int{200, 1460, 4 * 1460, 20 * 1460, 64 << 10, 256 << 10}

var faultKinds = []string{"linkdown", "blackhole", "crash", "flap", "degrade", "corrupt", "duplicate"}

// Generate samples the scenario for (seed, ov). It is deterministic: the rng
// stream is consumed in a fixed order and overrides only clamp the results.
func Generate(seed int64, ov Overrides) Spec {
	rng := rand.New(rand.NewSource(seed))
	sp := Spec{Seed: seed, K: 4}

	sp.Topo = "leafspine"
	if rng.Intn(4) == 0 {
		sp.Topo = "fattree"
	}
	sp.Leaves = 2 + rng.Intn(3)       // 2..4
	sp.Spines = 1 + rng.Intn(3)       // 1..3
	sp.HostsPerLeaf = 1 + rng.Intn(3) // 1..3
	if ov.Topo != "" {
		sp.Topo = ov.Topo
	}
	if ov.Leaves > 0 && sp.Leaves > ov.Leaves {
		sp.Leaves = ov.Leaves
	}
	if ov.Spines > 0 && sp.Spines > ov.Spines {
		sp.Spines = ov.Spines
	}
	if ov.HostsPerLeaf > 0 && sp.HostsPerLeaf > ov.HostsPerLeaf {
		sp.HostsPerLeaf = ov.HostsPerLeaf
	}
	if sp.Leaves < 2 {
		sp.Leaves = 2 // at least two racks, so traffic crosses the fabric
	}
	if sp.Spines < 1 {
		sp.Spines = 1
	}
	if sp.HostsPerLeaf < 1 {
		sp.HostsPerLeaf = 1
	}
	if sp.Topo == "fattree" {
		sp.Hosts = sp.K * sp.K * sp.K / 4
	} else {
		sp.Hosts = sp.Leaves * sp.HostsPerLeaf
	}

	sp.QueueCap = 32 * (1 + rng.Intn(4)) // 32..128 packets
	sp.ECNK = sp.QueueCap / 4
	sp.Policy = "ecmp"
	if rng.Intn(2) == 0 {
		sp.Policy = "msglb"
	}
	// Only ECN-driven algorithms: fabric trunks stamp ECN feedback (not
	// delay or explicit rates), so Swift/RCP would free-run here.
	ccKinds := []cc.Kind{cc.KindDCTCP, cc.KindAIMD, cc.KindDCQCN}
	sp.CC = ccKinds[rng.Intn(len(ccKinds))]
	// Window caps stay above the 10-MSS initial window (algorithms start at
	// InitWindow unclamped).
	sp.MaxWindowMSS = []int{0, 32, 64}[rng.Intn(3)]

	sp.Horizon = time.Duration(10+rng.Intn(31)) * time.Millisecond // 10..40ms
	if ov.Horizon > 0 && sp.Horizon > ov.Horizon {
		sp.Horizon = ov.Horizon
	}
	if sp.Horizon < 2*time.Millisecond {
		sp.Horizon = 2 * time.Millisecond
	}

	for src := 0; src < sp.Hosts; src++ {
		n := 1 + rng.Intn(4)
		if ov.Messages > 0 && n > ov.Messages {
			n = ov.Messages
		}
		for j := 0; j < n; j++ {
			dst := rng.Intn(sp.Hosts - 1)
			if dst >= src {
				dst++
			}
			size := msgSizes[rng.Intn(len(msgSizes))]
			sp.Msgs = append(sp.Msgs, MsgSpec{
				Src: src, Dst: dst, Size: size,
				Start:   time.Duration(rng.Int63n(int64(sp.Horizon / 2))),
				Payload: size <= 64<<10,
				Pri:     uint8(rng.Intn(3)),
			})
		}
	}

	nf := rng.Intn(4) // 0..3
	if ov.MaxFaults >= 0 && nf > ov.MaxFaults {
		nf = ov.MaxFaults
	}
	for i := 0; i < nf; i++ {
		f := FaultSpec{
			Kind:   faultKinds[rng.Intn(len(faultKinds))],
			Target: rng.Intn(1 << 16),
			Edge:   rng.Intn(4) == 0,
			At:     time.Millisecond + time.Duration(rng.Int63n(int64(sp.Horizon/2))),
		}
		if rng.Intn(3) != 0 { // 1 in 3 faults is permanent
			f.Dur = time.Millisecond + time.Duration(rng.Int63n(int64(sp.Horizon/4)))
		}
		switch f.Kind {
		case "corrupt":
			f.P = 0.01 + rng.Float64()*0.2
		case "duplicate":
			f.P = 0.01 + rng.Float64()*0.1
		case "degrade":
			f.P = 0.1 + rng.Float64()*0.5
		case "flap":
			if f.Dur <= 0 {
				f.Dur = time.Millisecond
			}
		}
		sp.Faults = append(sp.Faults, f)
	}

	// Offload placement draws come last, and only when opted in, so every
	// run without the opt-in consumes an identical rng stream — shrunken
	// repro seeds recorded before this dimension existed stay valid.
	if ov.Offload {
		sp.Offload = []string{"cache", "ids"}[rng.Intn(2)]
		sp.OffloadTarget = rng.Intn(1 << 16)
	}
	// The rival draw comes last of all, for the same seed-stability reason.
	if ov.Rival {
		sp.Rival = []string{"dctcp", "mptcp-lia", "mptcp-olia", "quic"}[rng.Intn(4)]
	}
	return sp
}

// Result is one scenario run under the invariant checker.
type Result struct {
	Spec Spec
	// Violations holds the recorded invariant failures (capped; Count is the
	// true total).
	Violations []check.Violation
	Count      int
	// Delivered/Completed/Expected summarize message progress (informational;
	// a fault schedule may legitimately prevent completion within the
	// horizon).
	Delivered, Completed, Expected int
	Events                         uint64
}

// Run generates and executes the scenario for (seed, ov).
func Run(seed int64, ov Overrides) Result {
	return RunSpec(Generate(seed, ov))
}

// RunSpec executes one sampled scenario: build the fabric, install the
// checker, attach MTP endpoints, schedule the workload and faults, run to
// the horizon, and collect violations.
func RunSpec(sp Spec) Result {
	fab := buildFabric(sp)
	installOffload(sp, fab)
	chk := check.New(fab.Eng, fab.Net)
	if sp.Rival != "" {
		return runRivalSpec(sp, fab, chk)
	}
	n := fab.NumHosts()

	res := Result{Spec: sp, Expected: len(sp.Msgs)}
	hosts := make([]*simhost.MTPHost, n)
	var completed int
	for i := 0; i < n; i++ {
		cfg := core.Config{
			LocalPort:    uint16(1000 + i),
			RTO:          time.Millisecond,
			FailoverRTOs: 2,
			CC:           sp.CC,
			CCConfig: cc.Config{
				LineRate:  10e9,
				MaxWindow: float64(sp.MaxWindowMSS) * 1460,
			},
			Observer:      chk,
			OnMessage:     func(m *core.InMessage) { res.Delivered++ },
			OnMessageSent: func(m *core.OutMessage) { completed++ },
		}
		hosts[i] = simhost.AttachMTP(fab.Net, fab.Host(i), cfg)
		chk.AttachEndpoint(hosts[i].EP, fab.Host(i).ID())
	}

	inj := fault.NewInjector(fab.Eng, sp.Seed)
	applyFaults(sp, fab, inj)

	// Payloads are generated outside the spec (they would bloat it) but
	// deterministically from the seed, in message order.
	payloadRng := rand.New(rand.NewSource(sp.Seed ^ 0x5ced))
	for _, ms := range sp.Msgs {
		src := hosts[ms.Src]
		dstID := fab.Host(ms.Dst).ID()
		dstPort := uint16(1000 + ms.Dst)
		var data []byte
		if ms.Payload {
			data = make([]byte, ms.Size)
			payloadRng.Read(data)
		}
		size, pri := ms.Size, ms.Pri
		fab.Eng.ScheduleAt(ms.Start, func() {
			if data != nil {
				src.EP.Send(dstID, dstPort, data, core.SendOptions{Priority: pri})
			} else {
				src.EP.SendSynthetic(dstID, dstPort, size, core.SendOptions{Priority: pri})
			}
		})
	}

	fab.Eng.Run(sp.Horizon)
	chk.Finalize()
	res.Violations = chk.Violations()
	res.Count = chk.Count()
	res.Completed = completed
	res.Events = fab.Eng.Processed()
	return res
}

func buildFabric(sp Spec) *topo.Fabric {
	link := topo.LinkSpec{
		Rate: 10e9, Delay: time.Microsecond,
		QueueCap: sp.QueueCap, ECNThreshold: sp.ECNK,
	}
	var mk topo.PolicyFunc
	if sp.Policy == "msglb" {
		mk = func() simnet.ForwardPolicy { return simnet.NewMessageLB() }
	}
	if sp.Topo == "fattree" {
		return topo.NewFatTree(topo.FatTreeConfig{
			K: sp.K, HostLink: link, FabricLink: link, Policy: mk, Seed: sp.Seed,
		})
	}
	return topo.NewLeafSpine(topo.LeafSpineConfig{
		Leaves: sp.Leaves, Spines: sp.Spines, HostsPerLeaf: sp.HostsPerLeaf,
		HostLink: link, FabricLink: link, Policy: mk, Seed: sp.Seed,
	})
}

// installOffload places the sampled device on a fabric switch. Only devices
// transparent to arbitrary traffic are eligible: the cache consumes packets
// only on a KVS cache hit (which the random workload cannot construct) and a
// detect-mode IDS never consumes, so every transport invariant must keep
// holding with the interposer in the path — and a crash fault landing on the
// same switch exercises InterposerReset under the checker.
func installOffload(sp Spec, fab *topo.Fabric) {
	if sp.Offload == "" {
		return
	}
	sws := append([]*simnet.Switch{}, fab.Switches(topo.TierSpine)...)
	sws = append(sws, fab.Switches(topo.TierAgg)...)
	sws = append(sws, fab.Switches(topo.TierLeaf)...)
	if len(sws) == 0 {
		return
	}
	sw := sws[sp.OffloadTarget%len(sws)]
	switch sp.Offload {
	case "cache":
		offload.NewCache(sw, 64)
	case "ids":
		offload.NewIDS(sw, [][]byte{[]byte("MTP-IDS-SIGNATURE-0xDEADBEEF")}, false)
	}
}

func applyFaults(sp Spec, fab *topo.Fabric, inj *fault.Injector) {
	trunks := fab.Trunks()
	for _, f := range sp.Faults {
		if f.Kind == "crash" {
			sws := append([]*simnet.Switch{}, fab.Switches(topo.TierSpine)...)
			sws = append(sws, fab.Switches(topo.TierAgg)...)
			if len(sws) == 0 {
				sws = fab.Switches(topo.TierLeaf)
			}
			if len(sws) > 0 {
				inj.CrashSwitch(sws[f.Target%len(sws)], f.At, f.Dur)
			}
			continue
		}
		var l *simnet.Link
		if f.Edge {
			up, down := fab.HostLinks(f.Target % fab.NumHosts())
			if (f.Target/fab.NumHosts())%2 == 0 {
				l = up
			} else {
				l = down
			}
		} else if len(trunks) > 0 {
			l = trunks[f.Target%len(trunks)].Link
		} else {
			up, _ := fab.HostLinks(f.Target % fab.NumHosts())
			l = up
		}
		switch f.Kind {
		case "linkdown":
			inj.LinkDown(l, f.At, f.Dur)
		case "blackhole":
			inj.Blackhole(l, f.At, f.Dur)
		case "flap":
			inj.FlapLink(l, f.At, f.Dur, f.Dur, sp.Horizon)
		case "degrade":
			inj.Degrade(l, f.P, f.At, f.Dur)
		case "corrupt":
			inj.Corrupt(l, f.P, f.At, f.Dur)
		case "duplicate":
			inj.Duplicate(l, f.P, f.At, f.Dur)
		}
	}
}

// Shrink greedily minimizes a violating (seed, ov): it tightens one override
// at a time — simpler topology, fewer leaves/spines/hosts, fewer messages,
// fewer faults, a shorter horizon — keeping a candidate only if the
// regenerated scenario still violates, and repeats until no single reduction
// reproduces. Returns the minimal overrides and that run's result. When the
// initial run does not violate, it is returned unchanged.
func Shrink(seed int64, ov Overrides) (Overrides, Result) {
	best := Run(seed, ov)
	if best.Count == 0 {
		return ov, best
	}
	// Pin every free dimension to its sampled value so each can step down.
	sp := best.Spec
	cur := Overrides{
		Topo: sp.Topo, Leaves: sp.Leaves, Spines: sp.Spines,
		HostsPerLeaf: sp.HostsPerLeaf, MaxFaults: len(sp.Faults),
		Messages: maxPerHost(sp), Horizon: sp.Horizon, Offload: ov.Offload,
		Rival: ov.Rival,
	}
	try := func(cand Overrides) bool {
		if r := Run(seed, cand); r.Count > 0 {
			cur, best = cand, r
			return true
		}
		return false
	}
	for improved := true; improved; {
		improved = false
		if cur.Topo == "fattree" {
			c := cur
			c.Topo = "leafspine"
			improved = try(c) || improved
		}
		if cur.Leaves > 2 {
			c := cur
			c.Leaves--
			improved = try(c) || improved
		}
		if cur.Spines > 1 {
			c := cur
			c.Spines--
			improved = try(c) || improved
		}
		if cur.HostsPerLeaf > 1 {
			c := cur
			c.HostsPerLeaf--
			improved = try(c) || improved
		}
		if cur.Messages > 1 {
			c := cur
			c.Messages--
			improved = try(c) || improved
		}
		if cur.MaxFaults > 0 {
			c := cur
			c.MaxFaults--
			improved = try(c) || improved
		}
		if cur.Horizon >= 4*time.Millisecond {
			c := cur
			c.Horizon = cur.Horizon / 2
			improved = try(c) || improved
		}
		// Dropping the offload device only removes the trailing rng draws,
		// so the rest of the scenario regenerates identically.
		if cur.Offload {
			c := cur
			c.Offload = false
			improved = try(c) || improved
		}
		// Likewise the rival draw is last: disabling it reruns the identical
		// scenario with MTP endpoints, telling us whether the violation is
		// the rival transport's or the network's.
		if cur.Rival {
			c := cur
			c.Rival = false
			improved = try(c) || improved
		}
	}
	return cur, best
}

func maxPerHost(sp Spec) int {
	per := make(map[int]int)
	max := 1
	for _, m := range sp.Msgs {
		per[m.Src]++
		if per[m.Src] > max {
			max = per[m.Src]
		}
	}
	return max
}

// Search runs seeds [start, start+n) under ov and stops at the first
// violating one, returning its shrunken overrides and result. ok is false
// when every seed passes.
func Search(start int64, n int, ov Overrides) (seed int64, min Overrides, res Result, ok bool) {
	for s := start; s < start+int64(n); s++ {
		if r := Run(s, ov); r.Count > 0 {
			min, res = Shrink(s, ov)
			return s, min, res, true
		}
	}
	return 0, ov, Result{}, false
}

// ReproLine renders the one-line mtpexp invocation that replays (seed, ov).
func ReproLine(seed int64, ov Overrides) string {
	var b strings.Builder
	fmt.Fprintf(&b, "mtpexp -exp scenario -seed=%d", seed)
	if ov.Topo != "" {
		fmt.Fprintf(&b, " -topo=%s", ov.Topo)
	}
	if ov.Leaves > 0 {
		fmt.Fprintf(&b, " -leaves=%d", ov.Leaves)
	}
	if ov.Spines > 0 {
		fmt.Fprintf(&b, " -spines=%d", ov.Spines)
	}
	if ov.HostsPerLeaf > 0 {
		fmt.Fprintf(&b, " -hostsperleaf=%d", ov.HostsPerLeaf)
	}
	if ov.Messages > 0 {
		fmt.Fprintf(&b, " -messages=%d", ov.Messages)
	}
	if ov.MaxFaults >= 0 {
		fmt.Fprintf(&b, " -faults=%d", ov.MaxFaults)
	}
	if ov.Horizon > 0 {
		fmt.Fprintf(&b, " -duration=%v", ov.Horizon)
	}
	if ov.Offload {
		b.WriteString(" -offload")
	}
	if ov.Rival {
		b.WriteString(" -rival")
	}
	return b.String()
}

// String summarizes the run on a few lines: shape, progress, and the first
// violations.
func (r Result) String() string {
	var b strings.Builder
	sp := r.Spec
	shape := fmt.Sprintf("%d leaves x %d spines x %d hosts/leaf", sp.Leaves, sp.Spines, sp.HostsPerLeaf)
	if sp.Topo == "fattree" {
		shape = fmt.Sprintf("k=%d fat-tree", sp.K)
	}
	dev := ""
	if sp.Offload != "" {
		dev = fmt.Sprintf(", offload=%s", sp.Offload)
	}
	if sp.Rival != "" {
		dev += fmt.Sprintf(", rival=%s", sp.Rival)
	}
	fmt.Fprintf(&b, "scenario seed=%d: %s (%d hosts), cc=%s lb=%s%s, %d msgs, %d faults, horizon %v\n",
		sp.Seed, shape, sp.Hosts, sp.CC, sp.Policy, dev, len(sp.Msgs), len(sp.Faults), sp.Horizon)
	fmt.Fprintf(&b, "  %d/%d delivered, %d completed, %d events, %d violation(s)\n",
		r.Delivered, r.Expected, r.Completed, r.Events, r.Count)
	for i, v := range r.Violations {
		if i >= 8 {
			fmt.Fprintf(&b, "  ... %d more\n", len(r.Violations)-i)
			break
		}
		fmt.Fprintf(&b, "  %s\n", v)
	}
	return b.String()
}
