package scenario

import (
	"fmt"
	"time"

	"mtp/internal/baseline"
	"mtp/internal/cc"
	"mtp/internal/check"
	"mtp/internal/fault"
	"mtp/internal/topo"
)

// runRivalSpec executes the sampled workload over the sampled rival
// transport instead of MTP endpoints. Only the network-level invariants
// (packet conservation, queue occupancy, ECN marking) apply — the rivals
// make no MTP delivery promises — but the same fabrics, fault schedules,
// and in-network devices are in the path, so this is the randomized
// counterpart of the baseline conformance suite: any panic, stuck
// retransmission loop, or conservation violation surfaces under a seed
// that shrinks to a one-line repro.
func runRivalSpec(sp Spec, fab *topo.Fabric, chk *check.Checker) Result {
	res := Result{Spec: sp, Expected: len(sp.Msgs)}
	n := fab.NumHosts()
	demux := make([]*baseline.Demux, n)
	for i := 0; i < n; i++ {
		demux[i] = baseline.NewDemux()
		fab.Host(i).SetHandler(demux[i].Handle)
	}
	ccCfg := cc.Config{LineRate: 10e9, MaxWindow: float64(sp.MaxWindowMSS) * 1460}
	rto := time.Millisecond
	var completed int

	switch sp.Rival {
	case "dctcp":
		for i, ms := range sp.Msgs {
			conn := uint64(i + 1)
			delivered := false
			rcv := baseline.NewReceiver(fab.Eng, fab.Host(ms.Dst).Send, baseline.ReceiverConfig{
				Conn: conn, Src: fab.HostID(ms.Src),
				OnFin: func(time.Duration, int64) {
					if !delivered {
						delivered = true
						res.Delivered++
					}
				},
			})
			demux[ms.Dst].Add(conn, rcv.OnPacket)
			src, size := ms.Src, ms.Size
			fab.Eng.ScheduleAt(ms.Start, func() {
				snd := baseline.NewSender(fab.Eng, fab.Host(src).Send, baseline.SenderConfig{
					Conn: conn, Dst: fab.HostID(ms.Dst), SkipHandshake: true,
					RTO: rto, CC: sp.CC, CCConfig: ccCfg,
					OnComplete: func(time.Duration) { completed++ },
				})
				demux[src].Add(conn, snd.OnPacket)
				snd.Write(size)
				snd.Close()
			})
		}

	case "mptcp-lia", "mptcp-olia":
		coupling := baseline.CouplingLIA
		if sp.Rival == "mptcp-olia" {
			coupling = baseline.CouplingOLIA
		}
		for i, ms := range sp.Msgs {
			base := uint64(i+1) << 1
			conns := []uint64{base, base | 1}
			rcv := baseline.NewMPTCPReceiver(fab.Eng, fab.Host(ms.Dst).Send, fab.HostID(ms.Src), conns, 0)
			size := int64(ms.Size)
			delivered := false
			rcv.OnProgress = func(_ time.Duration, contiguous int64) {
				if !delivered && contiguous >= size {
					delivered = true
					res.Delivered++
				}
			}
			demux[ms.Dst].Add(conns[0], rcv.OnPacket)
			demux[ms.Dst].Add(conns[1], rcv.OnPacket)
			src, sz := ms.Src, ms.Size
			fab.Eng.ScheduleAt(ms.Start, func() {
				m := baseline.NewMPTCP(fab.Eng, fab.Host(src).Send, baseline.MPTCPConfig{
					Conns: conns, Dst: fab.HostID(ms.Dst),
					RTO: rto, CC: sp.CC, CCConfig: ccCfg,
					Coupling: coupling, FailoverRTOs: 2,
					OnComplete: func(time.Duration) { completed++ },
				})
				for j, s := range m.Subflows() {
					demux[src].Add(conns[j], s.OnPacket)
				}
				m.Write(sz)
			})
		}

	case "quic":
		// One connection per (src, dst) pair; each message is one stream.
		type pair struct{ src, dst int }
		conn := func(p pair) uint64 { return 1<<62 | uint64(p.src)<<24 | uint64(p.dst) }
		senders := map[pair]*baseline.QUICSender{}
		streams := map[pair]uint64{}
		seen := map[pair]bool{}
		for _, ms := range sp.Msgs {
			p := pair{ms.Src, ms.Dst}
			if seen[p] {
				continue
			}
			seen[p] = true
			rcv := baseline.NewQUICReceiver(fab.Eng, fab.Host(p.dst).Send, baseline.QUICReceiverConfig{
				Conn: conn(p), Src: fab.HostID(p.src),
				OnStream: func(time.Duration, uint64, int64) { res.Delivered++ },
			})
			demux[p.dst].Add(conn(p), rcv.OnPacket)
		}
		for _, ms := range sp.Msgs {
			p := pair{ms.Src, ms.Dst}
			size := ms.Size
			fab.Eng.ScheduleAt(ms.Start, func() {
				snd := senders[p]
				if snd == nil {
					snd = baseline.NewQUICSender(fab.Eng, fab.Host(p.src).Send, baseline.QUICSenderConfig{
						Conn: conn(p), Dst: fab.HostID(p.dst),
						RTO: rto, CC: sp.CC, CCConfig: ccCfg,
						OnStreamComplete: func(time.Duration, uint64) { completed++ },
					})
					senders[p] = snd
					demux[p.src].Add(conn(p), snd.OnPacket)
				}
				streams[p]++
				snd.OpenStream(streams[p], int64(size))
			})
		}

	default:
		panic(fmt.Sprintf("scenario: unknown rival %q", sp.Rival))
	}

	inj := fault.NewInjector(fab.Eng, sp.Seed)
	applyFaults(sp, fab, inj)

	fab.Eng.Run(sp.Horizon)
	chk.Finalize()
	res.Violations = chk.Violations()
	res.Count = chk.Count()
	res.Completed = completed
	res.Events = fab.Eng.Processed()
	return res
}
