package scenario

import (
	"reflect"
	"testing"
	"time"
)

// TestRegressions replays shrunken scenario seeds that exposed real protocol
// violations when the invariant harness was first dry-run against the tree.
// Each entry is the minimal (seed, overrides) pair the shrinker produced;
// the expectation is always zero violations.
//
// The msglb-sticky-exclude cases caught MessageLB/MessageRR forwarding
// pinned messages onto a pathlet after the sender had excluded it: the
// sticky per-message assignment ignored the filtered candidate set, so a
// failed-over message's retransmissions were steered straight back onto the
// dead pathlet until its final packet index happened to transit. Fixed in
// internal/simnet/switch.go by re-assigning whenever the pinned egress
// drops out of the candidates.
func TestRegressions(t *testing.T) {
	cases := []struct {
		name string
		seed int64
		ov   Overrides
	}{
		{
			// mtpexp -exp scenario -seed=51 -topo=leafspine -leaves=4
			//   -spines=2 -hostsperleaf=1 -messages=2 -faults=2 -duration=31ms
			name: "msglb-sticky-exclude-51",
			seed: 51,
			ov: Overrides{
				Topo: "leafspine", Leaves: 4, Spines: 2, HostsPerLeaf: 1,
				Messages: 2, MaxFaults: 2, Horizon: 31 * time.Millisecond,
			},
		},
		{
			// mtpexp -exp scenario -seed=58 -topo=leafspine -leaves=4
			//   -spines=2 -hostsperleaf=2 -messages=4 -faults=1 -duration=19ms
			name: "msglb-sticky-exclude-58",
			seed: 58,
			ov: Overrides{
				Topo: "leafspine", Leaves: 4, Spines: 2, HostsPerLeaf: 2,
				Messages: 4, MaxFaults: 1, Horizon: 19 * time.Millisecond,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := Run(tc.seed, tc.ov)
			if r.Count > 0 {
				t.Errorf("regression reappeared:\n  %s\n%s", ReproLine(tc.seed, tc.ov), r)
			}
		})
	}
}

// TestRivalRegressions pins one seed per rival baseline under -rival
// sampling. These seeds were chosen because their last rng draw selects the
// named rival and the fault sampler places link/switch outages in the
// message window, so the pins exercise each rival's retransmission path
// under the network invariant harness. The expectation is zero violations;
// a failure here means a rival endpoint broke a network-level invariant
// (packet conservation, queue bounds) or the seed mapping drifted —
// Generate must only ever append rng draws after the rival dimension.
func TestRivalRegressions(t *testing.T) {
	cases := []struct {
		name  string
		seed  int64
		rival string
	}{
		// mtpexp -exp scenario -seed=1 -rival  (15 msgs, 2 faults, 6 hosts)
		{name: "rival-quic-1", seed: 1, rival: "quic"},
		// mtpexp -exp scenario -seed=2 -rival  (11 msgs, 3 faults, 6 hosts)
		{name: "rival-mptcp-lia-2", seed: 2, rival: "mptcp-lia"},
		// mtpexp -exp scenario -seed=12 -rival  (5 msgs, 3 faults, 3 hosts)
		{name: "rival-mptcp-olia-12", seed: 12, rival: "mptcp-olia"},
	}
	ov := Overrides{MaxFaults: -1, Rival: true}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if sp := Generate(tc.seed, ov); sp.Rival != tc.rival {
				t.Fatalf("seed %d now samples rival %q, want %q: the rng draw order changed",
					tc.seed, sp.Rival, tc.rival)
			}
			r := Run(tc.seed, ov)
			if r.Count > 0 {
				t.Errorf("rival regression:\n  %s\n%s", ReproLine(tc.seed, ov), r)
			}
		})
	}
}

// TestRivalDrawIsLast locks the seed-stability contract: enabling -rival
// must not perturb any previously sampled dimension, because the rival
// draw is appended after every other dimension (including -offload's).
// Old shrunken repro lines would silently replay different scenarios if
// this ever regressed.
func TestRivalDrawIsLast(t *testing.T) {
	for seed := int64(1); seed <= 16; seed++ {
		base := Generate(seed, Overrides{MaxFaults: -1})
		rv := Generate(seed, Overrides{MaxFaults: -1, Rival: true})
		if rv.Rival == "" {
			t.Fatalf("seed %d: Rival override sampled no rival", seed)
		}
		rv.Rival = ""
		if !reflect.DeepEqual(base, rv) {
			t.Errorf("seed %d: enabling -rival changed the sampled scenario:\nbase: %+v\nrival: %+v",
				seed, base, rv)
		}
	}
}
