package scenario

import (
	"testing"
	"time"
)

// TestRegressions replays shrunken scenario seeds that exposed real protocol
// violations when the invariant harness was first dry-run against the tree.
// Each entry is the minimal (seed, overrides) pair the shrinker produced;
// the expectation is always zero violations.
//
// The msglb-sticky-exclude cases caught MessageLB/MessageRR forwarding
// pinned messages onto a pathlet after the sender had excluded it: the
// sticky per-message assignment ignored the filtered candidate set, so a
// failed-over message's retransmissions were steered straight back onto the
// dead pathlet until its final packet index happened to transit. Fixed in
// internal/simnet/switch.go by re-assigning whenever the pinned egress
// drops out of the candidates.
func TestRegressions(t *testing.T) {
	cases := []struct {
		name string
		seed int64
		ov   Overrides
	}{
		{
			// mtpexp -exp scenario -seed=51 -topo=leafspine -leaves=4
			//   -spines=2 -hostsperleaf=1 -messages=2 -faults=2 -duration=31ms
			name: "msglb-sticky-exclude-51",
			seed: 51,
			ov: Overrides{
				Topo: "leafspine", Leaves: 4, Spines: 2, HostsPerLeaf: 1,
				Messages: 2, MaxFaults: 2, Horizon: 31 * time.Millisecond,
			},
		},
		{
			// mtpexp -exp scenario -seed=58 -topo=leafspine -leaves=4
			//   -spines=2 -hostsperleaf=2 -messages=4 -faults=1 -duration=19ms
			name: "msglb-sticky-exclude-58",
			seed: 58,
			ov: Overrides{
				Topo: "leafspine", Leaves: 4, Spines: 2, HostsPerLeaf: 2,
				Messages: 4, MaxFaults: 1, Horizon: 19 * time.Millisecond,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := Run(tc.seed, tc.ov)
			if r.Count > 0 {
				t.Errorf("regression reappeared:\n  %s\n%s", ReproLine(tc.seed, tc.ov), r)
			}
		})
	}
}
