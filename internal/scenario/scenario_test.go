package scenario

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"mtp/internal/simnet"
)

// TestScenarioSweep runs a batch of seeded random scenarios — fabric,
// workload, and fault schedule all sampled — under the full invariant set
// and requires zero violations. SCENARIO_SEEDS overrides the seed count
// (the nightly CI job runs 500).
func TestScenarioSweep(t *testing.T) {
	n := seedCount(t, 60, 10)
	for seed := int64(1); seed <= int64(n); seed++ {
		r := Run(seed, NoOverrides())
		if r.Count > 0 {
			min, res := Shrink(seed, NoOverrides())
			t.Errorf("seed %d violated invariants; shrunk repro:\n  %s\n%s",
				seed, ReproLine(seed, min), res)
		}
	}
}

// seedCount returns the sweep seed count: SCENARIO_SEEDS when set (the
// nightly CI job passes 500), else short/default.
func seedCount(t *testing.T, def, short int) int {
	if s := os.Getenv("SCENARIO_SEEDS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			t.Fatalf("bad SCENARIO_SEEDS %q", s)
		}
		return v
	}
	if testing.Short() {
		return short
	}
	return def
}

// TestScenarioOffloadSweep re-runs a batch with in-network device placement
// opted in: an interposing cache or detect-mode IDS sits on a sampled
// switch, crash faults wipe its state mid-run, and every transport
// invariant must still hold.
func TestScenarioOffloadSweep(t *testing.T) {
	n := seedCount(t, 30, 8)
	ov := NoOverrides()
	ov.Offload = true
	placed := 0
	for seed := int64(1); seed <= int64(n); seed++ {
		r := Run(seed, ov)
		if r.Spec.Offload != "" {
			placed++
		}
		if r.Count > 0 {
			min, res := Shrink(seed, ov)
			t.Errorf("seed %d violated invariants with offload device; shrunk repro:\n  %s\n%s",
				seed, ReproLine(seed, min), res)
		}
	}
	if placed != n {
		t.Fatalf("device placed in %d/%d runs", placed, n)
	}
}

// TestScenarioRivalSweep re-runs a batch with the rival baseline sampled per
// seed: the same fabrics, workloads, and fault schedules run over DCTCP,
// coupled MPTCP (LIA/OLIA), or the QUIC-like baseline instead of MTP
// endpoints. The rivals promise nothing about delivery, but the network-level
// invariants (conservation, queue bounds) must hold and no endpoint may
// panic or wedge the engine.
func TestScenarioRivalSweep(t *testing.T) {
	n := seedCount(t, 30, 8)
	ov := NoOverrides()
	ov.Rival = true
	sampled := map[string]int{}
	for seed := int64(1); seed <= int64(n); seed++ {
		r := Run(seed, ov)
		sampled[r.Spec.Rival]++
		if r.Count > 0 {
			min, res := Shrink(seed, ov)
			t.Errorf("seed %d violated invariants under rival baseline; shrunk repro:\n  %s\n%s",
				seed, ReproLine(seed, min), res)
		}
	}
	if sampled[""] > 0 {
		t.Fatalf("%d/%d runs sampled no rival", sampled[""], n)
	}
	t.Logf("rival mix: %v", sampled)
}

// TestOffloadDrawsAppendAfterExisting pins the rng discipline that keeps
// recorded repro seeds (regress_test.go) valid: enabling Offload must not
// change any other sampled dimension, because its draws come after all
// existing ones.
func TestOffloadDrawsAppendAfterExisting(t *testing.T) {
	ov := NoOverrides()
	ov.Offload = true
	for seed := int64(1); seed <= 50; seed++ {
		plain := Generate(seed, NoOverrides())
		with := Generate(seed, ov)
		if with.Offload == "" {
			t.Fatalf("seed %d: no device sampled with Offload on", seed)
		}
		with.Offload, with.OffloadTarget = "", 0
		if fmt.Sprintf("%+v", plain) != fmt.Sprintf("%+v", with) {
			t.Fatalf("seed %d: offload opt-in perturbed the sampled scenario:\n%+v\nvs\n%+v",
				seed, plain, with)
		}
	}
}

// TestScenarioDeterministic re-runs one seed and requires bit-identical
// outcomes — the property that makes a shrunken seed a usable repro.
func TestScenarioDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		a := Run(seed, NoOverrides())
		b := Run(seed, NoOverrides())
		if a.Count != b.Count || a.Delivered != b.Delivered ||
			a.Completed != b.Completed || a.Events != b.Events {
			t.Fatalf("seed %d not deterministic: %+v vs %+v", seed,
				[4]int{a.Count, a.Delivered, a.Completed, int(a.Events)},
				[4]int{b.Count, b.Delivered, b.Completed, int(b.Events)})
		}
	}
}

// TestScenarioShrinksInjectedBug proves the harness catches a deliberately
// injected protocol bug and shrinks it to a small repro: with the switch
// exclude-list filter disabled (the bug class PR 3 fixed), the checker's
// forwarding audit must flag traffic steered onto excluded pathlets, and the
// shrinker must reduce the scenario to at most 8 hosts.
func TestScenarioShrinksInjectedBug(t *testing.T) {
	simnet.SetBrokenExcludeFilter(true)
	defer simnet.SetBrokenExcludeFilter(false)

	seed, min, res, ok := Search(1, 200, NoOverrides())
	if !ok {
		t.Fatal("injected exclude-filter bug escaped 200 seeded scenarios")
	}
	exclude := false
	for _, v := range res.Violations {
		if v.Rule == "exclude" {
			exclude = true
			break
		}
	}
	if !exclude {
		t.Fatalf("seed %d caught rules other than \"exclude\":\n%s", seed, res)
	}
	if res.Spec.Hosts > 8 {
		t.Errorf("shrunk repro still has %d hosts, want <= 8\n%s", res.Spec.Hosts, res)
	}
	t.Logf("caught and shrunk: %s\n%s", ReproLine(seed, min), res)
}
