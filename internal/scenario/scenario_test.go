package scenario

import (
	"os"
	"strconv"
	"testing"

	"mtp/internal/simnet"
)

// TestScenarioSweep runs a batch of seeded random scenarios — fabric,
// workload, and fault schedule all sampled — under the full invariant set
// and requires zero violations. SCENARIO_SEEDS overrides the seed count
// (the nightly CI job runs 500).
func TestScenarioSweep(t *testing.T) {
	n := 60
	if s := os.Getenv("SCENARIO_SEEDS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			t.Fatalf("bad SCENARIO_SEEDS %q", s)
		}
		n = v
	}
	if testing.Short() {
		n = 10
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		r := Run(seed, NoOverrides())
		if r.Count > 0 {
			min, res := Shrink(seed, NoOverrides())
			t.Errorf("seed %d violated invariants; shrunk repro:\n  %s\n%s",
				seed, ReproLine(seed, min), res)
		}
	}
}

// TestScenarioDeterministic re-runs one seed and requires bit-identical
// outcomes — the property that makes a shrunken seed a usable repro.
func TestScenarioDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		a := Run(seed, NoOverrides())
		b := Run(seed, NoOverrides())
		if a.Count != b.Count || a.Delivered != b.Delivered ||
			a.Completed != b.Completed || a.Events != b.Events {
			t.Fatalf("seed %d not deterministic: %+v vs %+v", seed,
				[4]int{a.Count, a.Delivered, a.Completed, int(a.Events)},
				[4]int{b.Count, b.Delivered, b.Completed, int(b.Events)})
		}
	}
}

// TestScenarioShrinksInjectedBug proves the harness catches a deliberately
// injected protocol bug and shrinks it to a small repro: with the switch
// exclude-list filter disabled (the bug class PR 3 fixed), the checker's
// forwarding audit must flag traffic steered onto excluded pathlets, and the
// shrinker must reduce the scenario to at most 8 hosts.
func TestScenarioShrinksInjectedBug(t *testing.T) {
	simnet.SetBrokenExcludeFilter(true)
	defer simnet.SetBrokenExcludeFilter(false)

	seed, min, res, ok := Search(1, 200, NoOverrides())
	if !ok {
		t.Fatal("injected exclude-filter bug escaped 200 seeded scenarios")
	}
	exclude := false
	for _, v := range res.Violations {
		if v.Rule == "exclude" {
			exclude = true
			break
		}
	}
	if !exclude {
		t.Fatalf("seed %d caught rules other than \"exclude\":\n%s", seed, res)
	}
	if res.Spec.Hosts > 8 {
		t.Errorf("shrunk repro still has %d hosts, want <= 8\n%s", res.Spec.Hosts, res)
	}
	t.Logf("caught and shrunk: %s\n%s", ReproLine(seed, min), res)
}
