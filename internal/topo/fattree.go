package topo

import (
	"fmt"

	"mtp/internal/simnet"
)

// FatTreeConfig parameterizes a k-ary fat-tree (Al-Fares et al.): k pods,
// each with k/2 edge and k/2 aggregation switches, (k/2)² core switches,
// and k³/4 hosts. With uniform link rates the fabric is fully non-blocking
// (1:1 at every tier).
type FatTreeConfig struct {
	// K is the switch radix; must be even and ≥ 2. Default 4 (16 hosts).
	K int

	HostLink   LinkSpec // host↔edge links
	FabricLink LinkSpec // edge↔agg and agg↔core trunks

	// Policy builds the forwarding policy per switch (nil = ECMP). Edges
	// and aggs choose among k/2 uplinks; downward routing is single-path.
	Policy PolicyFunc

	// Seed seeds the fabric's discrete-event engine.
	Seed int64
}

func (c FatTreeConfig) withDefaults() FatTreeConfig {
	if c.K == 0 {
		c.K = 4
	}
	c.HostLink = c.HostLink.withDefaults()
	c.FabricLink = c.FabricLink.withDefaults()
	return c
}

// NewFatTree builds a k-ary fat-tree. Hosts are ordered pod-major, then
// edge, then port: host index ((pod·k/2)+edge)·k/2+port. Upward routing
// offers every uplink as an equal-cost candidate; downward routing is
// deterministic single-path, giving the canonical path counts: 1 for
// same-edge pairs, k/2 within a pod across edges, and (k/2)² across pods.
func NewFatTree(cfg FatTreeConfig) *Fabric {
	f, _ := buildFatTree(cfg, nil, 0, nil)
	return f
}

// NewFatTreeShard builds the slice of a k-ary fat-tree that shard owns under
// plan: its pods' switches and hosts, its round-robin share of the cores,
// and every link whose transmitting side it owns. The walk is the full
// topology's walk with unowned elements skipped, so node IDs, pathlet IDs,
// and link ranks are identical to the unsharded build. Links whose receiver
// lives in another shard get the remote hook instead of a local delivery
// (see simnet.LinkConfig.Remote); links arriving from another shard are
// materialized as mirror ingresses so deliveries injected by the shard
// driver carry the true link identity. The returned ShardCut indexes both.
func NewFatTreeShard(cfg FatTreeConfig, plan ShardPlan, shard int, remote simnet.RemoteHook) (*Fabric, *ShardCut) {
	return buildFatTree(cfg, &plan, shard, remote)
}

func buildFatTree(cfg FatTreeConfig, plan *ShardPlan, shard int, remote simnet.RemoteHook) (*Fabric, *ShardCut) {
	cfg = cfg.withDefaults()
	k := cfg.K
	if k < 2 || k%2 != 0 {
		panic(fmt.Sprintf("topo: fat-tree radix must be even and >= 2, got %d", k))
	}
	half := k / 2
	f := newFabric(cfg.Seed)
	cut := &ShardCut{
		Out:       make(map[*simnet.Link]CutPort),
		In:        make(map[int]*simnet.Link),
		Lookahead: cfg.FabricLink.Delay,
	}
	ownPod := func(p int) bool { return plan == nil || plan.PodShard[p] == shard }
	ownCore := func(ci int) bool { return plan == nil || plan.CoreShard[ci] == shard }

	// Switches first — cores, then per pod aggs and edges — so node IDs and
	// pathlet assignment are stable for a given config. Core a*half+c is
	// the c-th core attached to the a-th agg of every pod.
	cores := make([]*simnet.Switch, half*half)
	for i := range cores {
		if ownCore(i) {
			cores[i] = f.addSwitch(TierSpine, -1, cfg.Policy)
		} else {
			f.Net.SkipIDs(1)
		}
	}
	aggs := make([][]*simnet.Switch, k)  // [pod][a]
	edges := make([][]*simnet.Switch, k) // [pod][e]
	for p := 0; p < k; p++ {
		aggs[p] = make([]*simnet.Switch, half)
		edges[p] = make([]*simnet.Switch, half)
		for a := 0; a < half; a++ {
			if ownPod(p) {
				aggs[p][a] = f.addSwitch(TierAgg, p, cfg.Policy)
			} else {
				f.Net.SkipIDs(1)
			}
		}
		for e := 0; e < half; e++ {
			if ownPod(p) {
				edges[p][e] = f.addSwitch(TierLeaf, p, cfg.Policy)
			} else {
				f.Net.SkipIDs(1)
			}
		}
	}
	// Unowned switches keep their positional IDs for cut-link bookkeeping.
	numSwitches := half*half + k*k
	coreID := func(ci int) simnet.NodeID { return simnet.NodeID(ci) }
	aggID := func(p, a int) simnet.NodeID { return simnet.NodeID(half*half + p*k + a) }
	edgeID := func(p, e int) simnet.NodeID { return simnet.NodeID(half*half + p*k + half + e) }

	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			for h := 0; h < half; h++ {
				if ownPod(p) {
					f.addHost(p, edges[p][e], cfg.HostLink, false)
				} else {
					f.skipHost(p)
				}
			}
		}
	}

	// addTrunk wires one directed trunk, advancing the pathlet and rank
	// counters whether or not this shard materializes it. from/to are nil
	// for switches other shards own; toID and dstShard describe the far end
	// of a boundary crossing.
	addTrunk := func(from, to *simnet.Switch, toID simnet.NodeID, dstShard int, fromTier, toTier Tier, pod int, name string) *simnet.Link {
		id := f.nextPathlet
		f.nextPathlet++
		rank := f.allocRank()
		if from == nil && to == nil {
			return nil
		}
		pathlet := id
		spec := cfg.FabricLink
		lcfg := simnet.LinkConfig{
			Rate: spec.Rate, Delay: spec.Delay,
			QueueCap: spec.QueueCap, ECNThreshold: spec.ECNThreshold,
			Pathlet: &pathlet, StampECN: true,
			Rank: rank,
		}
		if from != nil && to != nil {
			l := f.Net.Connect(to, lcfg, name)
			from.AddEgress(l)
			f.trunks = append(f.trunks, &Trunk{
				Link: l, From: from, To: to,
				FromTier: fromTier, ToTier: toTier, Pod: pod, Pathlet: id,
			})
			return l
		}
		if from != nil {
			// Boundary egress: queue and wire live here, delivery crosses.
			lcfg.Remote = remote
			l := f.Net.Connect(remoteNode{id: toID}, lcfg, name)
			from.AddEgress(l)
			f.trunks = append(f.trunks, &Trunk{
				Link: l, From: from, To: nil,
				FromTier: fromTier, ToTier: toTier, Pod: pod, Pathlet: id,
			})
			cut.Out[l] = CutPort{Rank: rank, DstShard: dstShard}
			return l
		}
		// Boundary ingress: a mirror of the owning shard's egress, carrying
		// the same name, config, and rank, so injected deliveries are
		// indistinguishable from local ones. Not a Trunk — its queue is
		// always empty here (the real queue is in the owning shard).
		l := f.Net.Connect(to, lcfg, name)
		cut.In[rank] = l
		return l
	}

	// Trunks: edge↔agg inside each pod, agg↔core across pods.
	edgeUp := make([][][]*simnet.Link, k)  // [pod][e][a]
	aggDown := make([][][]*simnet.Link, k) // [pod][a][e]
	aggUp := make([][][]*simnet.Link, k)   // [pod][a][c]
	coreDown := make([][]*simnet.Link, half*half)
	for ci := range coreDown {
		coreDown[ci] = make([]*simnet.Link, k)
	}
	for p := 0; p < k; p++ {
		edgeUp[p] = make([][]*simnet.Link, half)
		aggDown[p] = make([][]*simnet.Link, half)
		aggUp[p] = make([][]*simnet.Link, half)
		for i := 0; i < half; i++ {
			edgeUp[p][i] = make([]*simnet.Link, half)
			aggDown[p][i] = make([]*simnet.Link, half)
			aggUp[p][i] = make([]*simnet.Link, half)
		}
		podShard := shard
		if plan != nil {
			podShard = plan.PodShard[p]
		}
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				edgeUp[p][e][a] = addTrunk(edges[p][e], aggs[p][a], aggID(p, a), podShard,
					TierLeaf, TierAgg, p, fmt.Sprintf("p%d-edge%d-agg%d", p, e, a))
				aggDown[p][a][e] = addTrunk(aggs[p][a], edges[p][e], edgeID(p, e), podShard,
					TierAgg, TierLeaf, p, fmt.Sprintf("p%d-agg%d-edge%d", p, a, e))
			}
		}
		for a := 0; a < half; a++ {
			for c := 0; c < half; c++ {
				ci := a*half + c
				coreShard := shard
				if plan != nil {
					coreShard = plan.CoreShard[ci]
				}
				aggUp[p][a][c] = addTrunk(aggs[p][a], cores[ci], coreID(ci), coreShard,
					TierAgg, TierSpine, p, fmt.Sprintf("p%d-agg%d-core%d", p, a, ci))
				coreDown[ci][p] = addTrunk(cores[ci], aggs[p][a], aggID(p, a), podShard,
					TierSpine, TierAgg, p, fmt.Sprintf("core%d-p%d-agg%d", ci, p, a))
			}
		}
	}

	// Routing is computed, not tabulated: per-host route maps in every
	// switch would need O(k⁵/4) entries fabric-wide (~10M at k=32), so each
	// switch decomposes the contiguous host ID via the shared per-radix
	// class tables (see ftclass.go) — two int32 loads per packet instead of
	// two divisions. Candidate sets and their order are exactly what the
	// AddRoute-based construction produced: all uplinks upward, the unique
	// downlink downward, and the host's access link at its own edge (folded
	// into the route function so edge route maps stay empty and Forward
	// skips the map probe entirely).
	hostBase := simnet.NodeID(numSwitches)
	nHosts := k * half * half
	cls := fatTreeClasses(k)
	for p := 0; p < k; p++ {
		if !ownPod(p) {
			continue
		}
		for e := 0; e < half; e++ {
			ups := edgeUp[p][e]
			base := (p*half + e) * half // first host index under this edge
			edges[p][e].SetRouteFunc(func(dst simnet.NodeID) []*simnet.Link {
				hi := int(dst - hostBase)
				if uint(hi) >= uint(nHosts) {
					return nil
				}
				if local := hi - base; uint(local) < uint(half) {
					return f.hostDown[hi : hi+1]
				}
				return ups
			})
		}
		for a := 0; a < half; a++ {
			p, ups := p, aggUp[p][a]
			downs := make([][]*simnet.Link, half) // [he] single-candidate sets
			for e := 0; e < half; e++ {
				downs[e] = aggDown[p][a][e : e+1]
			}
			aggs[p][a].SetRouteFunc(func(dst simnet.NodeID) []*simnet.Link {
				hi := int(dst - hostBase)
				if uint(hi) >= uint(nHosts) {
					return nil
				}
				if int(cls.podOf[hi]) == p {
					return downs[cls.edgeOf[hi]]
				}
				return ups
			})
		}
	}
	for ci := range cores {
		if cores[ci] == nil {
			continue
		}
		downs := make([][]*simnet.Link, k) // [pod] single-candidate sets
		for p := 0; p < k; p++ {
			downs[p] = coreDown[ci][p : p+1]
		}
		cores[ci].SetRouteFunc(func(dst simnet.NodeID) []*simnet.Link {
			hi := int(dst - hostBase)
			if uint(hi) >= uint(nHosts) {
				return nil
			}
			return downs[cls.podOf[hi]]
		})
	}

	// Size the packet pool and event arena from what this shard actually
	// owns, so the hot path never grows either mid-run: roughly one in-
	// flight packet per host plus a queue share per trunk, and one pending
	// event per link plus a few timers per host. Both are capped — an
	// unsharded k=64 build would otherwise reserve tens of MB it may never
	// touch.
	ownedHosts := 0
	for _, h := range f.hosts {
		if h != nil {
			ownedHosts++
		}
	}
	nLinks := len(f.Net.Links())
	pkts := ownedHosts + nLinks/4 + 256
	if pkts > 1<<16 {
		pkts = 1 << 16
	}
	f.Net.PreallocPackets(pkts)
	events := nLinks + 4*ownedHosts + 1024
	if events > 1<<18 {
		events = 1 << 18
	}
	f.Eng.Reserve(events)
	return f, cut
}
