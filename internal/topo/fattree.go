package topo

import (
	"fmt"

	"mtp/internal/simnet"
)

// FatTreeConfig parameterizes a k-ary fat-tree (Al-Fares et al.): k pods,
// each with k/2 edge and k/2 aggregation switches, (k/2)² core switches,
// and k³/4 hosts. With uniform link rates the fabric is fully non-blocking
// (1:1 at every tier).
type FatTreeConfig struct {
	// K is the switch radix; must be even and ≥ 2. Default 4 (16 hosts).
	K int

	HostLink   LinkSpec // host↔edge links
	FabricLink LinkSpec // edge↔agg and agg↔core trunks

	// Policy builds the forwarding policy per switch (nil = ECMP). Edges
	// and aggs choose among k/2 uplinks; downward routing is single-path.
	Policy PolicyFunc

	// Seed seeds the fabric's discrete-event engine.
	Seed int64
}

func (c FatTreeConfig) withDefaults() FatTreeConfig {
	if c.K == 0 {
		c.K = 4
	}
	c.HostLink = c.HostLink.withDefaults()
	c.FabricLink = c.FabricLink.withDefaults()
	return c
}

// NewFatTree builds a k-ary fat-tree. Hosts are ordered pod-major, then
// edge, then port: host index ((pod·k/2)+edge)·k/2+port. Upward routing
// offers every uplink as an equal-cost candidate; downward routing is
// deterministic single-path, giving the canonical path counts: 1 for
// same-edge pairs, k/2 within a pod across edges, and (k/2)² across pods.
func NewFatTree(cfg FatTreeConfig) *Fabric {
	cfg = cfg.withDefaults()
	k := cfg.K
	if k < 2 || k%2 != 0 {
		panic(fmt.Sprintf("topo: fat-tree radix must be even and >= 2, got %d", k))
	}
	half := k / 2
	f := newFabric(cfg.Seed)

	// Switches first — cores, then per pod aggs and edges — so node IDs and
	// pathlet assignment are stable for a given config. Core a*half+c is
	// the c-th core attached to the a-th agg of every pod.
	for i := 0; i < half*half; i++ {
		f.addSwitch(TierSpine, -1, cfg.Policy)
	}
	aggs := make([][]*simnet.Switch, k)  // [pod][a]
	edges := make([][]*simnet.Switch, k) // [pod][e]
	for p := 0; p < k; p++ {
		for a := 0; a < half; a++ {
			aggs[p] = append(aggs[p], f.addSwitch(TierAgg, p, cfg.Policy))
		}
		for e := 0; e < half; e++ {
			edges[p] = append(edges[p], f.addSwitch(TierLeaf, p, cfg.Policy))
		}
	}
	cores := f.switches[TierSpine]

	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			for h := 0; h < half; h++ {
				f.addHost(p, edges[p][e], cfg.HostLink)
			}
		}
	}

	// Trunks: edge↔agg inside each pod, agg↔core across pods.
	edgeUp := make(map[[3]int]*Trunk)  // (pod, edge, agg)
	aggDown := make(map[[3]int]*Trunk) // (pod, agg, edge)
	aggUp := make(map[[3]int]*Trunk)   // (pod, agg, c)
	coreDown := make(map[[2]int]*Trunk) // (core, pod)
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				edgeUp[[3]int{p, e, a}] = f.addTrunk(edges[p][e], aggs[p][a], TierLeaf, TierAgg, p,
					cfg.FabricLink, fmt.Sprintf("p%d-edge%d-agg%d", p, e, a))
				aggDown[[3]int{p, a, e}] = f.addTrunk(aggs[p][a], edges[p][e], TierAgg, TierLeaf, p,
					cfg.FabricLink, fmt.Sprintf("p%d-agg%d-edge%d", p, a, e))
			}
		}
		for a := 0; a < half; a++ {
			for c := 0; c < half; c++ {
				ci := a*half + c
				aggUp[[3]int{p, a, c}] = f.addTrunk(aggs[p][a], cores[ci], TierAgg, TierSpine, p,
					cfg.FabricLink, fmt.Sprintf("p%d-agg%d-core%d", p, a, ci))
				coreDown[[2]int{ci, p}] = f.addTrunk(cores[ci], aggs[p][a], TierSpine, TierAgg, p,
					cfg.FabricLink, fmt.Sprintf("core%d-p%d-agg%d", ci, p, a))
			}
		}
	}

	// Routes. Host index layout: ((p*half)+e)*half + h.
	for hi, h := range f.hosts {
		hp := f.hostPod[hi]
		he := (hi / half) % half
		for p := 0; p < k; p++ {
			for e := 0; e < half; e++ {
				if p == hp && e == he {
					continue // local access route installed by addHost
				}
				// Edges send everything non-local up to every agg.
				for a := 0; a < half; a++ {
					edges[p][e].AddRoute(h.ID(), edgeUp[[3]int{p, e, a}].Link)
				}
			}
			for a := 0; a < half; a++ {
				if p == hp {
					// In the host's pod, aggs go straight down to its edge.
					aggs[p][a].AddRoute(h.ID(), aggDown[[3]int{p, a, he}].Link)
					continue
				}
				// Elsewhere, aggs spread across their k/2 cores.
				for c := 0; c < half; c++ {
					aggs[p][a].AddRoute(h.ID(), aggUp[[3]int{p, a, c}].Link)
				}
			}
		}
		// Each core has exactly one downlink into the host's pod.
		for ci := range cores {
			cores[ci].AddRoute(h.ID(), coreDown[[2]int{ci, hp}].Link)
		}
	}
	return f
}
