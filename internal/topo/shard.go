package topo

import (
	"fmt"
	"time"

	"mtp/internal/simnet"
)

// ShardPlan partitions a fat-tree across S parallel simulation shards
// (internal/shard). Pods are assigned in contiguous blocks — pod-internal
// traffic (host↔edge↔agg) never crosses a shard boundary — and cores
// round-robin, spreading the top tier's load. Replicating the core tier
// instead was rejected: replicated core egress queues would see different
// contention than the single shared queue, breaking bit-identity with the
// unsharded run.
type ShardPlan struct {
	// Shards is the shard count S, 1 ≤ S ≤ k.
	Shards int
	// PodShard maps pod → owning shard (contiguous blocks).
	PodShard []int
	// CoreShard maps core index → owning shard (round-robin).
	CoreShard []int
	// Lookahead is the minimum propagation delay over every link that can
	// cross a shard boundary (here: all boundary links are FabricLink-class
	// agg↔core trunks). A shard that knows every neighbour's clock has
	// passed T may run freely to T+Lookahead: any packet a neighbour emits
	// after T needs at least Lookahead of wire time to arrive.
	Lookahead time.Duration
}

// PlanFatTreeShards computes the pod partition for cfg across shards.
// It panics when shards is out of range — callers decide policy (clamping,
// refusing) before planning.
func PlanFatTreeShards(cfg FatTreeConfig, shards int) ShardPlan {
	cfg = cfg.withDefaults()
	k := cfg.K
	if shards < 1 || shards > k {
		panic(fmt.Sprintf("topo: fat-tree with %d pods cannot split into %d shards", k, shards))
	}
	half := k / 2
	plan := ShardPlan{
		Shards:    shards,
		PodShard:  make([]int, k),
		CoreShard: make([]int, half*half),
		Lookahead: cfg.FabricLink.Delay,
	}
	for p := 0; p < k; p++ {
		plan.PodShard[p] = p * shards / k
	}
	for ci := range plan.CoreShard {
		plan.CoreShard[ci] = ci % shards
	}
	return plan
}

// CutPort locates one boundary egress link: its global construction rank
// (the key the receiving shard's mirror is filed under) and the shard that
// owns the receiver.
type CutPort struct {
	Rank     int
	DstShard int
}

// ShardCut is one shard's view of the boundary: Out indexes the egress
// links whose deliveries leave the shard, In the mirror links (keyed by the
// same global rank) through which the shard driver injects arrivals.
type ShardCut struct {
	Out       map[*simnet.Link]CutPort
	In        map[int]*simnet.Link
	Lookahead time.Duration
}

// remoteNode stands in for a switch another shard owns, as the nominal
// destination of a boundary egress link. It never receives: the link's
// Remote hook intercepts delivery.
type remoteNode struct {
	id simnet.NodeID
}

func (r remoteNode) ID() simnet.NodeID { return r.id }

func (r remoteNode) Receive(*simnet.Packet, *simnet.Link) {
	panic(fmt.Sprintf("topo: remote stub for node %d received a packet locally", r.id))
}
