// Package topo declaratively constructs datacenter fabrics on top of
// internal/simnet: a two-tier leaf-spine and a k-ary fat-tree, parameterized
// by radix, link rate/delay, queue depth, and ECN threshold. The builders
// instantiate switches and links, install hop-by-hop routes whose candidate
// sets are exactly the equal-cost shortest paths, assign a stable pathlet ID
// to every switch-to-switch trunk, and return a Fabric handle that attaches
// endpoints (internal/simhost) and exposes per-pod/per-tier fault targets
// (internal/fault). Construction is purely deterministic: the same config
// always yields the same wiring, the same pathlet IDs, and the same route
// candidate order, which is what makes fabric-scale experiments replayable
// from a seed.
package topo

import (
	"fmt"
	"time"

	"mtp/internal/sim"
	"mtp/internal/simnet"
)

// LinkSpec parameterizes one class of fabric links.
type LinkSpec struct {
	// Rate is the line rate in bits per second. Zero means 10 Gbps.
	Rate float64
	// Delay is the propagation delay. Zero means 1 µs.
	Delay time.Duration
	// QueueCap is the per-queue capacity in packets. Zero means 256.
	QueueCap int
	// ECNThreshold marks CE at this instantaneous queue length. Zero means
	// QueueCap/4 (disable explicitly with a negative value).
	ECNThreshold int
}

func (s LinkSpec) withDefaults() LinkSpec {
	if s.Rate == 0 {
		s.Rate = 10e9
	}
	if s.Delay == 0 {
		s.Delay = time.Microsecond
	}
	if s.QueueCap == 0 {
		s.QueueCap = 256
	}
	if s.ECNThreshold == 0 {
		s.ECNThreshold = s.QueueCap / 4
	}
	if s.ECNThreshold < 0 {
		s.ECNThreshold = 0
	}
	return s
}

// PolicyFunc builds a fresh forwarding-policy instance for one switch.
// Stateful policies (MessageLB, MessageRR, Spray) must not be shared between
// switches, so the fabric calls this once per switch. Nil means ECMP.
type PolicyFunc func() simnet.ForwardPolicy

// Tier identifies a switch layer in a fabric.
type Tier int

const (
	// TierLeaf is the host-facing layer (ToR / fat-tree edge).
	TierLeaf Tier = iota
	// TierAgg is the fat-tree aggregation layer (absent in leaf-spine).
	TierAgg
	// TierSpine is the top layer (leaf-spine spine / fat-tree core).
	TierSpine
)

// String names the tier.
func (t Tier) String() string {
	switch t {
	case TierLeaf:
		return "leaf"
	case TierAgg:
		return "agg"
	case TierSpine:
		return "spine"
	}
	return fmt.Sprintf("tier(%d)", int(t))
}

// Trunk is one directed switch-to-switch link with its place in the fabric —
// the unit of pathlet identity and the natural fault-injection target.
type Trunk struct {
	Link     *simnet.Link
	From, To *simnet.Switch
	// FromTier/ToTier locate the trunk (leaf→spine is an uplink,
	// spine→leaf a downlink, and so on).
	FromTier, ToTier Tier
	// Pod is the pod of the pod-side endpoint (leaf index in a leaf-spine),
	// or -1 for trunks that touch no pod.
	Pod int
	// Pathlet is the stable ID stamped into MTP headers on this trunk. IDs
	// are unique per (switch, egress) fabric-wide and assigned in
	// construction order, so rebuilding the same config reproduces them.
	Pathlet uint32
}

// Fabric is a constructed topology: the engine and network it lives on, the
// hosts in deterministic order, and the switch/trunk inventory grouped the
// way fault-injection experiments want to target it.
type Fabric struct {
	Eng *sim.Engine
	Net *simnet.Network

	hosts    []*simnet.Host
	hostPod  []int // pod (leaf-spine: leaf index) per host
	hostUp   []*simnet.Link
	hostDown []*simnet.Link
	// hostIDs holds every host's network address, including hosts that a
	// partitioned build (NewFatTreeShard) left to other shards — the walk
	// allocates the same IDs whether or not the node is materialized.
	hostIDs []simnet.NodeID

	switches  map[Tier][]*simnet.Switch
	switchPod map[*simnet.Switch]int

	trunks      []*Trunk
	nextPathlet uint32
	// nextRank numbers every link in construction order; the rank keys
	// same-timestamp delivery ordering in the engine (simnet.LinkConfig.Rank)
	// so event order is a function of the wiring, not engine-local history.
	nextRank int
}

func newFabric(seed int64) *Fabric {
	eng := sim.NewEngine(seed)
	return &Fabric{
		Eng:         eng,
		Net:         simnet.NewNetwork(eng),
		switches:    make(map[Tier][]*simnet.Switch),
		switchPod:   make(map[*simnet.Switch]int),
		nextPathlet: 1,
	}
}

// NumHosts returns the number of hosts in the fabric — the full topology's
// count even in a partitioned build, where unowned entries are nil.
func (f *Fabric) NumHosts() int { return len(f.hosts) }

// Host returns host i (construction order: pod-major, then leaf, then port).
// In a partitioned build it is nil for hosts owned by other shards.
func (f *Fabric) Host(i int) *simnet.Host { return f.hosts[i] }

// HostID returns host i's network address. Unlike Host, it is defined for
// every host of a partitioned build: IDs are allocated by construction
// position, so shard s can address a host that only shard t materialized.
func (f *Fabric) HostID(i int) simnet.NodeID { return f.hostIDs[i] }

// OwnsHost reports whether host i was materialized in this build (always
// true in a full build).
func (f *Fabric) OwnsHost(i int) bool { return f.hosts[i] != nil }

// Hosts returns all hosts in construction order.
func (f *Fabric) Hosts() []*simnet.Host { return f.hosts }

// HostPod returns the pod (leaf-spine: leaf index) of host i.
func (f *Fabric) HostPod(i int) int { return f.hostPod[i] }

// HostLinks returns host i's uplink (host→leaf) and downlink (leaf→host) —
// edge fault targets.
func (f *Fabric) HostLinks(i int) (up, down *simnet.Link) {
	return f.hostUp[i], f.hostDown[i]
}

// Switches returns the switches of one tier in construction order.
func (f *Fabric) Switches(t Tier) []*simnet.Switch { return f.switches[t] }

// SwitchPod returns the pod a switch belongs to, or -1 for spine/core.
func (f *Fabric) SwitchPod(sw *simnet.Switch) int {
	if pod, ok := f.switchPod[sw]; ok {
		return pod
	}
	return -1
}

// Trunks returns every switch-to-switch link in construction order.
func (f *Fabric) Trunks() []*Trunk { return f.trunks }

// TierTrunks returns the trunks whose transmitting side is the given tier
// (TierLeaf selects uplinks into the fabric, TierSpine the downlinks out of
// it) — per-tier fault targets.
func (f *Fabric) TierTrunks(from Tier) []*Trunk {
	var out []*Trunk
	for _, tr := range f.trunks {
		if tr.FromTier == from {
			out = append(out, tr)
		}
	}
	return out
}

// PodTrunks returns the trunks touching the given pod — per-pod fault
// targets (draining or degrading one rack or one fat-tree pod).
func (f *Fabric) PodTrunks(pod int) []*Trunk {
	var out []*Trunk
	for _, tr := range f.trunks {
		if tr.Pod == pod {
			out = append(out, tr)
		}
	}
	return out
}

// --- construction helpers ---

func (f *Fabric) addSwitch(t Tier, pod int, policy PolicyFunc) *simnet.Switch {
	var p simnet.ForwardPolicy
	if policy != nil {
		p = policy()
	} else {
		p = simnet.ECMP{}
	}
	sw := simnet.NewSwitch(f.Net, p)
	f.switches[t] = append(f.switches[t], sw)
	if pod >= 0 {
		f.switchPod[sw] = pod
	}
	return sw
}

// allocRank numbers the next link; ranks start at 1 because Rank 0 means
// "unranked" to simnet.
func (f *Fabric) allocRank() int {
	f.nextRank++
	return f.nextRank
}

// addHost materializes one host under leaf. installRoute selects whether the
// leaf gets an explicit AddRoute entry for the host's downlink: leaf-spine
// keeps table routing, while the fat-tree folds local-host delivery into its
// computed route function so the leaf's routes map stays empty and the
// per-packet forwarding path never hashes a map (simnet.Switch.Forward's
// fast path).
func (f *Fabric) addHost(pod int, leaf *simnet.Switch, spec LinkSpec, installRoute bool) *simnet.Host {
	h := simnet.NewHost(f.Net)
	i := len(f.hosts)
	up := f.Net.Connect(leaf, simnet.LinkConfig{
		Rate: spec.Rate, Delay: spec.Delay,
		QueueCap: spec.QueueCap, ECNThreshold: spec.ECNThreshold,
		Rank: f.allocRank(),
	}, fmt.Sprintf("host%d-up", i))
	down := f.Net.Connect(h, simnet.LinkConfig{
		Rate: spec.Rate, Delay: spec.Delay,
		QueueCap: spec.QueueCap, ECNThreshold: spec.ECNThreshold,
		Rank: f.allocRank(),
	}, fmt.Sprintf("host%d-down", i))
	h.SetUplink(up)
	if installRoute {
		leaf.AddRoute(h.ID(), down)
	}
	f.hosts = append(f.hosts, h)
	f.hostPod = append(f.hostPod, pod)
	f.hostUp = append(f.hostUp, up)
	f.hostDown = append(f.hostDown, down)
	f.hostIDs = append(f.hostIDs, h.ID())
	return h
}

// skipHost advances the ID, rank, and inventory counters for a host that
// belongs to another shard, without materializing it.
func (f *Fabric) skipHost(pod int) {
	id := f.Net.NextID()
	f.Net.SkipIDs(1)
	f.nextRank += 2 // the up and down access links
	f.hosts = append(f.hosts, nil)
	f.hostPod = append(f.hostPod, pod)
	f.hostUp = append(f.hostUp, nil)
	f.hostDown = append(f.hostDown, nil)
	f.hostIDs = append(f.hostIDs, id)
}

// addTrunk wires from→to with a fresh pathlet ID and ECN-feedback stamping,
// so per-(pathlet, TC) congestion state forms at MTP senders for every hop.
func (f *Fabric) addTrunk(from, to *simnet.Switch, fromTier, toTier Tier, pod int, spec LinkSpec, name string) *Trunk {
	id := f.nextPathlet
	f.nextPathlet++
	pathlet := id
	l := f.Net.Connect(to, simnet.LinkConfig{
		Rate: spec.Rate, Delay: spec.Delay,
		QueueCap: spec.QueueCap, ECNThreshold: spec.ECNThreshold,
		Pathlet: &pathlet, StampECN: true,
		Rank: f.allocRank(),
	}, name)
	tr := &Trunk{
		Link: l, From: from, To: to,
		FromTier: fromTier, ToTier: toTier,
		Pod: pod, Pathlet: id,
	}
	f.trunks = append(f.trunks, tr)
	return tr
}

// --- path verification (property tests, experiment sanity) ---

// CountPaths returns the number of distinct forwarding paths from host src
// to host dst, following every route candidate at every hop. It panics on a
// forwarding loop (see CheckLoopFree for the error-returning sweep).
func (f *Fabric) CountPaths(src, dst int) int {
	if src == dst {
		return 0
	}
	first := f.hosts[src].Uplink()
	n, err := f.countFrom(first.Dst(), f.hosts[dst].ID(), map[simnet.NodeID]bool{})
	if err != nil {
		panic(err.Error())
	}
	return n
}

func (f *Fabric) countFrom(node simnet.Node, dst simnet.NodeID, onStack map[simnet.NodeID]bool) (int, error) {
	if node.ID() == dst {
		return 1, nil
	}
	sw, ok := node.(*simnet.Switch)
	if !ok {
		return 0, fmt.Errorf("topo: path reached host %d instead of %d", node.ID(), dst)
	}
	if onStack[sw.ID()] {
		return 0, fmt.Errorf("topo: forwarding loop through switch %d toward host %d", sw.ID(), dst)
	}
	onStack[sw.ID()] = true
	defer delete(onStack, sw.ID())
	total := 0
	for _, l := range sw.Routes(dst) {
		n, err := f.countFrom(l.Dst(), dst, onStack)
		if err != nil {
			return 0, err
		}
		total += n
	}
	if total == 0 {
		return 0, fmt.Errorf("topo: switch %d has no route toward host %d", sw.ID(), dst)
	}
	return total, nil
}

// CheckLoopFree walks every host pair's full candidate route tree and
// returns the first forwarding loop or routing dead end found, or nil.
func (f *Fabric) CheckLoopFree() error {
	for s := range f.hosts {
		for d := range f.hosts {
			if s == d {
				continue
			}
			first := f.hosts[s].Uplink()
			if _, err := f.countFrom(first.Dst(), f.hosts[d].ID(), map[simnet.NodeID]bool{}); err != nil {
				return err
			}
		}
	}
	return nil
}
