package topo

import (
	"testing"
	"time"

	"mtp/internal/core"
	"mtp/internal/fault"
	"mtp/internal/simhost"
	"mtp/internal/simnet"
)

// TestLeafSpinePathCounts checks the equal-cost path structure of a
// generated leaf-spine: one path inside a rack, exactly Spines paths across
// racks, and no forwarding loops anywhere.
func TestLeafSpinePathCounts(t *testing.T) {
	const leaves, spines, perLeaf = 4, 3, 2
	f := NewLeafSpine(LeafSpineConfig{Leaves: leaves, Spines: spines, HostsPerLeaf: perLeaf})
	if got := f.NumHosts(); got != leaves*perLeaf {
		t.Fatalf("hosts = %d, want %d", got, leaves*perLeaf)
	}
	if err := f.CheckLoopFree(); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < f.NumHosts(); s++ {
		for d := 0; d < f.NumHosts(); d++ {
			if s == d {
				continue
			}
			want := 1
			if f.HostPod(s) != f.HostPod(d) {
				want = spines
			}
			if got := f.CountPaths(s, d); got != want {
				t.Fatalf("paths %d->%d = %d, want %d", s, d, got, want)
			}
		}
	}
}

// TestFatTreePathCounts checks the canonical k-ary fat-tree path counts:
// 1 under one edge, k/2 within a pod, (k/2)² across pods — and loop
// freedom over every pair.
func TestFatTreePathCounts(t *testing.T) {
	const k = 4
	f := NewFatTree(FatTreeConfig{K: k})
	if got, want := f.NumHosts(), k*k*k/4; got != want {
		t.Fatalf("hosts = %d, want %d", got, want)
	}
	if got, want := len(f.Switches(TierSpine)), k*k/4; got != want {
		t.Fatalf("cores = %d, want %d", got, want)
	}
	if err := f.CheckLoopFree(); err != nil {
		t.Fatal(err)
	}
	half := k / 2
	edgeOf := func(h int) int { return h / half }
	for s := 0; s < f.NumHosts(); s++ {
		for d := 0; d < f.NumHosts(); d++ {
			if s == d {
				continue
			}
			var want int
			switch {
			case edgeOf(s) == edgeOf(d):
				want = 1
			case f.HostPod(s) == f.HostPod(d):
				want = half
			default:
				want = half * half
			}
			if got := f.CountPaths(s, d); got != want {
				t.Fatalf("paths %d->%d = %d, want %d", s, d, got, want)
			}
		}
	}
}

// TestPathletIDsUniqueAndStable checks the pathlet contract: IDs are unique
// per (switch, egress) across the whole fabric, every trunk's link stamps
// its own ID, and rebuilding the same config reproduces the assignment
// exactly.
func TestPathletIDsUniqueAndStable(t *testing.T) {
	build := func() *Fabric {
		return NewFatTree(FatTreeConfig{K: 4, Seed: 3})
	}
	f := build()
	seen := make(map[uint32]string)
	for _, tr := range f.Trunks() {
		if prev, dup := seen[tr.Pathlet]; dup {
			t.Fatalf("pathlet %d reused: %s and %s", tr.Pathlet, prev, tr.Link.Name())
		}
		seen[tr.Pathlet] = tr.Link.Name()
		cfg := tr.Link.Config()
		if cfg.Pathlet == nil || *cfg.Pathlet != tr.Pathlet {
			t.Fatalf("trunk %s link does not stamp its pathlet ID %d", tr.Link.Name(), tr.Pathlet)
		}
		if tr.From == tr.To {
			t.Fatalf("trunk %s connects a switch to itself", tr.Link.Name())
		}
	}
	g := build()
	if len(f.Trunks()) != len(g.Trunks()) {
		t.Fatalf("rebuild changed trunk count: %d vs %d", len(f.Trunks()), len(g.Trunks()))
	}
	for i, tr := range f.Trunks() {
		gr := g.Trunks()[i]
		if tr.Pathlet != gr.Pathlet || tr.Link.Name() != gr.Link.Name() ||
			tr.FromTier != gr.FromTier || tr.Pod != gr.Pod {
			t.Fatalf("trunk %d differs across rebuilds: %+v vs %+v", i, tr, gr)
		}
	}
}

// TestFabricFaultTargets checks the per-tier/per-pod selectors, then uses
// them end to end: crash one spine of a leaf-spine mid-transfer and verify
// MTP's pathlet failover still completes every message over the survivor.
func TestFabricFaultTargets(t *testing.T) {
	f := NewLeafSpine(LeafSpineConfig{Leaves: 2, Spines: 2, HostsPerLeaf: 2, Seed: 5})
	if got := len(f.TierTrunks(TierLeaf)); got != 4 {
		t.Fatalf("leaf uplinks = %d, want 4", got)
	}
	if got := len(f.PodTrunks(0)); got != 4 {
		t.Fatalf("pod 0 trunks = %d, want 4 (2 up + 2 down)", got)
	}

	delivered := 0
	var hosts []*simhost.MTPHost
	for i, h := range f.Hosts() {
		hosts = append(hosts, simhost.AttachMTP(f.Net, h, core.Config{
			LocalPort: uint16(100 + i), RTO: time.Millisecond,
			FailoverRTOs: 2, ProbeInterval: 4 * time.Millisecond,
			OnMessage: func(m *core.InMessage) { delivered++ },
		}))
	}
	// Cross-rack pairs so every message transits a spine.
	const msgs, size = 4, 200 << 10
	for i := 0; i < 2; i++ {
		for k := 0; k < msgs; k++ {
			hosts[i].EP.SendSynthetic(f.Host(2+i).ID(), uint16(100+2+i), size, core.SendOptions{})
			hosts[2+i].EP.SendSynthetic(f.Host(i).ID(), uint16(100+i), size, core.SendOptions{})
		}
	}
	in := fault.NewInjector(f.Eng, 5)
	in.CrashSwitch(f.Switches(TierSpine)[0], 200*time.Microsecond, 0) // never revives
	f.Eng.Run(100 * time.Millisecond)

	if want := 4 * msgs; delivered != want {
		t.Fatalf("delivered %d of %d messages despite surviving spine", delivered, want)
	}
	for i, mh := range hosts {
		if mh.EP.Pending() != 0 {
			t.Fatalf("host %d still has %d pending messages", i, mh.EP.Pending())
		}
	}
}

// TestFabricPolicyPerSwitch verifies each switch gets its own policy
// instance (stateful policies must not be shared).
func TestFabricPolicyPerSwitch(t *testing.T) {
	var built []simnet.ForwardPolicy
	f := NewLeafSpine(LeafSpineConfig{Leaves: 2, Spines: 2, HostsPerLeaf: 1,
		Policy: func() simnet.ForwardPolicy {
			p := simnet.NewMessageLB()
			built = append(built, p)
			return p
		}})
	want := len(f.Switches(TierLeaf)) + len(f.Switches(TierSpine))
	if len(built) != want {
		t.Fatalf("policy factory called %d times, want %d", len(built), want)
	}
	for i, a := range built {
		for _, b := range built[i+1:] {
			if a == b {
				t.Fatal("policy instance shared between switches")
			}
		}
	}
}
