package topo

import (
	"testing"
	"time"

	"mtp/internal/simnet"
)

// nullHook discards boundary deliveries; shard construction only needs a
// non-nil RemoteHook on cut links.
type nullHook struct{}

func (nullHook) DeliverRemote(*simnet.Link, time.Duration, *simnet.Packet) {}

// TestPlanFatTreeShards pins the partition shape: contiguous pod blocks,
// round-robin cores, lookahead from the fabric-link delay, and a panic on
// out-of-range shard counts.
func TestPlanFatTreeShards(t *testing.T) {
	cfg := FatTreeConfig{K: 4, FabricLink: LinkSpec{Delay: 7 * time.Microsecond}}
	plan := PlanFatTreeShards(cfg, 2)
	if got, want := plan.PodShard, []int{0, 0, 1, 1}; len(got) != 4 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] || got[3] != want[3] {
		t.Fatalf("PodShard = %v, want %v", got, want)
	}
	if got, want := plan.CoreShard, []int{0, 1, 0, 1}; len(got) != 4 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] || got[3] != want[3] {
		t.Fatalf("CoreShard = %v, want %v", got, want)
	}
	if plan.Lookahead != 7*time.Microsecond {
		t.Fatalf("Lookahead = %v, want the fabric-link delay", plan.Lookahead)
	}

	for _, bad := range []int{0, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("PlanFatTreeShards(k=4, shards=%d) did not panic", bad)
				}
			}()
			PlanFatTreeShards(cfg, bad)
		}()
	}
}

// TestFatTreeShardSlices checks that the union of the shard builds is the
// unsharded fat-tree: every host materialized exactly once at its unsharded
// ID, link ranks on the cut matching mirrors on the receiving side, and
// per-shard switch inventories restricted to owned pods/cores.
func TestFatTreeShardSlices(t *testing.T) {
	cfg := FatTreeConfig{K: 4}
	full := NewFatTree(cfg)
	const S = 2
	plan := PlanFatTreeShards(cfg, S)

	fabs := make([]*Fabric, S)
	cuts := make([]*ShardCut, S)
	for s := 0; s < S; s++ {
		fabs[s], cuts[s] = NewFatTreeShard(cfg, plan, s, nullHook{})
		if cuts[s].Lookahead != plan.Lookahead {
			t.Fatalf("shard %d cut lookahead %v, want %v", s, cuts[s].Lookahead, plan.Lookahead)
		}
	}

	for i := 0; i < full.NumHosts(); i++ {
		owner := plan.PodShard[full.HostPod(i)]
		for s := 0; s < S; s++ {
			fab := fabs[s]
			if fab.HostID(i) != full.HostID(i) {
				t.Fatalf("shard %d host %d ID %d, want unsharded %d", s, i, fab.HostID(i), full.HostID(i))
			}
			if owns := fab.OwnsHost(i); owns != (s == owner) {
				t.Fatalf("shard %d OwnsHost(%d) = %v, owner is %d", s, i, owns, owner)
			}
			up, down := fab.HostLinks(i)
			if (up != nil) != (s == owner) || (down != nil) != (s == owner) {
				t.Fatalf("shard %d host %d links materialized = (%v,%v), owner is %d", s, i, up != nil, down != nil, owner)
			}
		}
	}

	// Switch inventory: aggs/edges only for owned pods, cores round-robin.
	for s := 0; s < S; s++ {
		for _, sw := range fabs[s].Switches(TierAgg) {
			if pod := fabs[s].SwitchPod(sw); plan.PodShard[pod] != s {
				t.Fatalf("shard %d built agg for pod %d owned by %d", s, pod, plan.PodShard[pod])
			}
		}
		for _, sw := range fabs[s].Switches(TierSpine) {
			if fabs[s].SwitchPod(sw) != -1 {
				t.Fatal("core switch reports a pod")
			}
		}
	}
	ownedCores := 0
	for s := 0; s < S; s++ {
		ownedCores += len(fabs[s].Switches(TierSpine))
	}
	if want := len(full.Switches(TierSpine)); ownedCores != want {
		t.Fatalf("cores across shards = %d, want %d", ownedCores, want)
	}

	// Every cut-out port must have a mirror with the same global rank in the
	// destination shard, and no two shards may share an egress rank.
	seenRank := map[int]int{}
	for s := 0; s < S; s++ {
		for l, port := range cuts[s].Out {
			if port.DstShard == s {
				t.Fatalf("shard %d cut link %s claims itself as destination", s, l.Name())
			}
			if prev, dup := seenRank[port.Rank]; dup {
				t.Fatalf("rank %d exported by shards %d and %d", port.Rank, prev, s)
			}
			seenRank[port.Rank] = s
			mirror := cuts[port.DstShard].In[port.Rank]
			if mirror == nil {
				t.Fatalf("shard %d has no mirror for rank %d from shard %d", port.DstShard, port.Rank, s)
			}
			if mirror.Name() != l.Name() {
				t.Fatalf("mirror name %q for cut link %q", mirror.Name(), l.Name())
			}
		}
	}
	if len(seenRank) == 0 {
		t.Fatal("no cut links found on a 2-shard fat-tree")
	}

	if got, want := TierLeaf.String(), "leaf"; got != want {
		t.Fatalf("TierLeaf = %q", got)
	}
	if got, want := TierAgg.String(), "agg"; got != want {
		t.Fatalf("TierAgg = %q", got)
	}
	if got, want := TierSpine.String(), "spine"; got != want {
		t.Fatalf("TierSpine = %q", got)
	}
}

// TestPlanLeafSpineShards pins the rack partition: contiguous leaf blocks,
// round-robin spines, lookahead from the trunk delay, and a panic on
// out-of-range shard counts.
func TestPlanLeafSpineShards(t *testing.T) {
	cfg := LeafSpineConfig{Leaves: 4, Spines: 3, HostsPerLeaf: 2,
		FabricLink: LinkSpec{Delay: 5 * time.Microsecond}}
	plan := PlanLeafSpineShards(cfg, 2)
	if got, want := plan.PodShard, []int{0, 0, 1, 1}; len(got) != 4 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] || got[3] != want[3] {
		t.Fatalf("PodShard = %v, want %v", got, want)
	}
	if got, want := plan.CoreShard, []int{0, 1, 0}; len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("CoreShard = %v, want %v", got, want)
	}
	if plan.Lookahead != 5*time.Microsecond {
		t.Fatalf("Lookahead = %v, want the trunk delay", plan.Lookahead)
	}
	for _, bad := range []int{0, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("PlanLeafSpineShards(leaves=4, shards=%d) did not panic", bad)
				}
			}()
			PlanLeafSpineShards(cfg, bad)
		}()
	}
}

// TestLeafSpineShardSlices checks that the union of leaf-spine shard builds
// is the unsharded fabric, mirroring TestFatTreeShardSlices: stable host
// IDs, rack-atomic ownership, spine round-robin, and rank-matched cut
// mirrors.
func TestLeafSpineShardSlices(t *testing.T) {
	cfg := LeafSpineConfig{Leaves: 4, Spines: 4, HostsPerLeaf: 3}
	full := NewLeafSpine(cfg)
	const S = 2
	plan := PlanLeafSpineShards(cfg, S)

	fabs := make([]*Fabric, S)
	cuts := make([]*ShardCut, S)
	for s := 0; s < S; s++ {
		fabs[s], cuts[s] = NewLeafSpineShard(cfg, plan, s, nullHook{})
		if cuts[s].Lookahead != plan.Lookahead {
			t.Fatalf("shard %d cut lookahead %v, want %v", s, cuts[s].Lookahead, plan.Lookahead)
		}
	}

	for i := 0; i < full.NumHosts(); i++ {
		owner := plan.PodShard[full.HostPod(i)]
		for s := 0; s < S; s++ {
			fab := fabs[s]
			if fab.HostID(i) != full.HostID(i) {
				t.Fatalf("shard %d host %d ID %d, want unsharded %d", s, i, fab.HostID(i), full.HostID(i))
			}
			if owns := fab.OwnsHost(i); owns != (s == owner) {
				t.Fatalf("shard %d OwnsHost(%d) = %v, owner is %d", s, i, owns, owner)
			}
			up, down := fab.HostLinks(i)
			if (up != nil) != (s == owner) || (down != nil) != (s == owner) {
				t.Fatalf("shard %d host %d links materialized = (%v,%v), owner is %d", s, i, up != nil, down != nil, owner)
			}
		}
	}

	// Leaves only in owning shards; spines round-robin and disjoint.
	for s := 0; s < S; s++ {
		for _, sw := range fabs[s].Switches(TierLeaf) {
			if pod := fabs[s].SwitchPod(sw); plan.PodShard[pod] != s {
				t.Fatalf("shard %d built leaf %d owned by %d", s, pod, plan.PodShard[pod])
			}
		}
	}
	ownedSpines := 0
	for s := 0; s < S; s++ {
		ownedSpines += len(fabs[s].Switches(TierSpine))
	}
	if want := len(full.Switches(TierSpine)); ownedSpines != want {
		t.Fatalf("spines across shards = %d, want %d", ownedSpines, want)
	}

	// Every cut-out port must have a rank-matched mirror in its destination
	// shard, ranks globally unique across shards.
	seenRank := map[int]int{}
	for s := 0; s < S; s++ {
		for l, port := range cuts[s].Out {
			if port.DstShard == s {
				t.Fatalf("shard %d cut link %s claims itself as destination", s, l.Name())
			}
			if prev, dup := seenRank[port.Rank]; dup {
				t.Fatalf("rank %d exported by shards %d and %d", port.Rank, prev, s)
			}
			seenRank[port.Rank] = s
			mirror := cuts[port.DstShard].In[port.Rank]
			if mirror == nil {
				t.Fatalf("shard %d has no mirror for rank %d from shard %d", port.DstShard, port.Rank, s)
			}
			if mirror.Name() != l.Name() {
				t.Fatalf("mirror name %q for cut link %q", mirror.Name(), l.Name())
			}
		}
	}
	if len(seenRank) == 0 {
		t.Fatal("no cut links found on a 2-shard leaf-spine")
	}
}

// TestRemoteStubNeverReceives pins the contract that a remote stand-in node
// only exists to carry an ID: a local delivery to it is a wiring bug and
// must panic loudly rather than silently vanish.
func TestRemoteStubNeverReceives(t *testing.T) {
	stub := remoteNode{id: 12}
	if stub.ID() != 12 {
		t.Fatalf("stub ID %d, want 12", stub.ID())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("remote stub accepted a local delivery")
		}
	}()
	stub.Receive(nil, nil)
}
