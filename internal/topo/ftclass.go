package topo

import "sync"

// ftClasses are the per-radix destination-class tables the fat-tree route
// functions index instead of computing divisions per packet: for host index
// hi, podOf[hi] = hi/(half·half) and edgeOf[hi] = (hi/half) mod half. The
// tables depend only on the radix, so one read-only copy per k serves every
// fabric built at that radix — including all shards of a partitioned build,
// which share the cache across their goroutines. Total cost is 8 bytes per
// host per radix (512 KB at k=64), versus O(k³) route-map entries per switch
// the arithmetic routing replaced in the first place.
type ftClasses struct {
	podOf  []int32 // host index -> pod
	edgeOf []int32 // host index -> edge switch index within the pod
}

// ftClassCache maps radix k -> *ftClasses. Entries are immutable after
// construction; concurrent builders may race to insert, LoadOrStore keeps
// the winner.
var ftClassCache sync.Map

func fatTreeClasses(k int) *ftClasses {
	if c, ok := ftClassCache.Load(k); ok {
		return c.(*ftClasses)
	}
	half := k / 2
	n := k * half * half
	c := &ftClasses{podOf: make([]int32, n), edgeOf: make([]int32, n)}
	for hi := 0; hi < n; hi++ {
		c.podOf[hi] = int32(hi / (half * half))
		c.edgeOf[hi] = int32((hi / half) % half)
	}
	actual, _ := ftClassCache.LoadOrStore(k, c)
	return actual.(*ftClasses)
}
