package topo

import "fmt"

// LeafSpineConfig parameterizes a two-tier leaf-spine fabric: Leaves ToR
// switches each hosting HostsPerLeaf hosts, fully meshed to Spines spine
// switches. Every inter-rack host pair has exactly Spines equal-cost paths;
// with FabricLink.Rate == HostLink.Rate the rack oversubscription ratio is
// HostsPerLeaf : Spines.
type LeafSpineConfig struct {
	Leaves       int // number of ToR switches, default 2
	Spines       int // number of spine switches, default 2
	HostsPerLeaf int // hosts under each ToR, default 2

	HostLink   LinkSpec // host↔leaf links
	FabricLink LinkSpec // leaf↔spine trunks

	// Policy builds the forwarding policy per switch (nil = ECMP). Only
	// leaves face a choice (spines have a single downlink per host), but
	// the policy is installed uniformly.
	Policy PolicyFunc

	// Seed seeds the fabric's discrete-event engine.
	Seed int64
}

func (c LeafSpineConfig) withDefaults() LeafSpineConfig {
	if c.Leaves == 0 {
		c.Leaves = 2
	}
	if c.Spines == 0 {
		c.Spines = 2
	}
	if c.HostsPerLeaf == 0 {
		c.HostsPerLeaf = 2
	}
	c.HostLink = c.HostLink.withDefaults()
	c.FabricLink = c.FabricLink.withDefaults()
	return c
}

// NewLeafSpine builds a leaf-spine fabric. Hosts are ordered leaf-major:
// host i sits under leaf i/HostsPerLeaf. Each leaf routes local hosts via
// their access link and every remote host via all Spines uplinks (the
// policy picks among them); each spine routes every host via its one
// downlink to the host's leaf — exactly the equal-cost shortest paths, so
// routing is loop-free by construction and CountPaths(i,j) == Spines for
// inter-rack pairs.
func NewLeafSpine(cfg LeafSpineConfig) *Fabric {
	cfg = cfg.withDefaults()
	if cfg.Leaves < 1 || cfg.Spines < 1 || cfg.HostsPerLeaf < 1 {
		panic("topo: leaf-spine needs at least one leaf, spine, and host per leaf")
	}
	f := newFabric(cfg.Seed)

	// Switches first, in tier order, so IDs and pathlets are stable.
	for s := 0; s < cfg.Spines; s++ {
		f.addSwitch(TierSpine, -1, cfg.Policy)
	}
	for l := 0; l < cfg.Leaves; l++ {
		f.addSwitch(TierLeaf, l, cfg.Policy)
	}
	spines := f.switches[TierSpine]
	leaves := f.switches[TierLeaf]

	for li, leaf := range leaves {
		for h := 0; h < cfg.HostsPerLeaf; h++ {
			f.addHost(li, leaf, cfg.HostLink)
		}
	}

	// Full leaf↔spine mesh.
	ups := make([][]*Trunk, cfg.Leaves)   // [leaf][spine]
	downs := make([][]*Trunk, cfg.Leaves) // [leaf][spine]
	for li, leaf := range leaves {
		for si, spine := range spines {
			ups[li] = append(ups[li], f.addTrunk(leaf, spine, TierLeaf, TierSpine, li,
				cfg.FabricLink, fmt.Sprintf("leaf%d-spine%d", li, si)))
			downs[li] = append(downs[li], f.addTrunk(spine, leaf, TierSpine, TierLeaf, li,
				cfg.FabricLink, fmt.Sprintf("spine%d-leaf%d", si, li)))
		}
	}

	// Routes: leaves spread remote traffic across every spine; spines have
	// one way down to each leaf.
	for hi, h := range f.hosts {
		hl := f.hostPod[hi]
		for li := range leaves {
			if li == hl {
				continue // local access route installed by addHost
			}
			for si := range spines {
				leaves[li].AddRoute(h.ID(), ups[li][si].Link)
			}
		}
		for si := range spines {
			spines[si].AddRoute(h.ID(), downs[hl][si].Link)
		}
	}
	return f
}
