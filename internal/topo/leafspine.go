package topo

import (
	"fmt"

	"mtp/internal/simnet"
)

// LeafSpineConfig parameterizes a two-tier leaf-spine fabric: Leaves ToR
// switches each hosting HostsPerLeaf hosts, fully meshed to Spines spine
// switches. Every inter-rack host pair has exactly Spines equal-cost paths;
// with FabricLink.Rate == HostLink.Rate the rack oversubscription ratio is
// HostsPerLeaf : Spines.
type LeafSpineConfig struct {
	Leaves       int // number of ToR switches, default 2
	Spines       int // number of spine switches, default 2
	HostsPerLeaf int // hosts under each ToR, default 2

	HostLink   LinkSpec // host↔leaf links
	FabricLink LinkSpec // leaf↔spine trunks

	// Policy builds the forwarding policy per switch (nil = ECMP). Only
	// leaves face a choice (spines have a single downlink per host), but
	// the policy is installed uniformly.
	Policy PolicyFunc

	// Seed seeds the fabric's discrete-event engine.
	Seed int64
}

func (c LeafSpineConfig) withDefaults() LeafSpineConfig {
	if c.Leaves == 0 {
		c.Leaves = 2
	}
	if c.Spines == 0 {
		c.Spines = 2
	}
	if c.HostsPerLeaf == 0 {
		c.HostsPerLeaf = 2
	}
	c.HostLink = c.HostLink.withDefaults()
	c.FabricLink = c.FabricLink.withDefaults()
	return c
}

// PlanLeafSpineShards computes the rack partition for cfg across shards:
// leaves (and their hosts — a rack never splits) in contiguous blocks,
// spines round-robin, exactly parallel to the fat-tree plan's pods/cores.
// The PodShard slice is indexed by leaf. It panics when shards is out of
// range — callers decide policy (clamping, refusing) before planning.
func PlanLeafSpineShards(cfg LeafSpineConfig, shards int) ShardPlan {
	cfg = cfg.withDefaults()
	if shards < 1 || shards > cfg.Leaves {
		panic(fmt.Sprintf("topo: leaf-spine with %d leaves cannot split into %d shards", cfg.Leaves, shards))
	}
	plan := ShardPlan{
		Shards:    shards,
		PodShard:  make([]int, cfg.Leaves),
		CoreShard: make([]int, cfg.Spines),
		Lookahead: cfg.FabricLink.Delay,
	}
	for l := 0; l < cfg.Leaves; l++ {
		plan.PodShard[l] = l * shards / cfg.Leaves
	}
	for s := 0; s < cfg.Spines; s++ {
		plan.CoreShard[s] = s % shards
	}
	return plan
}

// NewLeafSpine builds a leaf-spine fabric. Hosts are ordered leaf-major:
// host i sits under leaf i/HostsPerLeaf. Each leaf routes local hosts via
// their access link and every remote host via all Spines uplinks (the
// policy picks among them); each spine routes every host via its one
// downlink to the host's leaf — exactly the equal-cost shortest paths, so
// routing is loop-free by construction and CountPaths(i,j) == Spines for
// inter-rack pairs.
func NewLeafSpine(cfg LeafSpineConfig) *Fabric {
	f, _ := buildLeafSpine(cfg, nil, 0, nil)
	return f
}

// NewLeafSpineShard builds the slice of a leaf-spine fabric that shard owns
// under plan: its racks (leaf switch plus hosts), its round-robin share of
// the spines, and every link whose transmitting side it owns. As with
// NewFatTreeShard, the walk is the full topology's walk with unowned
// elements skipped, so node IDs, pathlet IDs, and link ranks match the
// unsharded build; boundary egresses get the remote hook and boundary
// ingresses materialize as rank-keyed mirrors, indexed by the returned
// ShardCut. Host↔leaf links never cross (a rack is atomic); only leaf↔spine
// trunks do.
func NewLeafSpineShard(cfg LeafSpineConfig, plan ShardPlan, shard int, remote simnet.RemoteHook) (*Fabric, *ShardCut) {
	return buildLeafSpine(cfg, &plan, shard, remote)
}

func buildLeafSpine(cfg LeafSpineConfig, plan *ShardPlan, shard int, remote simnet.RemoteHook) (*Fabric, *ShardCut) {
	cfg = cfg.withDefaults()
	if cfg.Leaves < 1 || cfg.Spines < 1 || cfg.HostsPerLeaf < 1 {
		panic("topo: leaf-spine needs at least one leaf, spine, and host per leaf")
	}
	f := newFabric(cfg.Seed)
	cut := &ShardCut{
		Out:       make(map[*simnet.Link]CutPort),
		In:        make(map[int]*simnet.Link),
		Lookahead: cfg.FabricLink.Delay,
	}
	ownLeaf := func(li int) bool { return plan == nil || plan.PodShard[li] == shard }
	ownSpine := func(si int) bool { return plan == nil || plan.CoreShard[si] == shard }

	// Switches first, in tier order, so IDs and pathlets are stable.
	spines := make([]*simnet.Switch, cfg.Spines)
	for s := 0; s < cfg.Spines; s++ {
		if ownSpine(s) {
			spines[s] = f.addSwitch(TierSpine, -1, cfg.Policy)
		} else {
			f.Net.SkipIDs(1)
		}
	}
	leaves := make([]*simnet.Switch, cfg.Leaves)
	for l := 0; l < cfg.Leaves; l++ {
		if ownLeaf(l) {
			leaves[l] = f.addSwitch(TierLeaf, l, cfg.Policy)
		} else {
			f.Net.SkipIDs(1)
		}
	}
	// Unowned switches keep their positional IDs for cut-link bookkeeping.
	spineID := func(si int) simnet.NodeID { return simnet.NodeID(si) }
	leafID := func(li int) simnet.NodeID { return simnet.NodeID(cfg.Spines + li) }

	for li := 0; li < cfg.Leaves; li++ {
		for h := 0; h < cfg.HostsPerLeaf; h++ {
			if ownLeaf(li) {
				f.addHost(li, leaves[li], cfg.HostLink, true)
			} else {
				f.skipHost(li)
			}
		}
	}

	// addTrunk wires one directed leaf↔spine trunk, advancing the pathlet
	// and rank counters whether or not this shard materializes it (same
	// contract as the fat-tree's boundary-aware addTrunk).
	addTrunk := func(from, to *simnet.Switch, toID simnet.NodeID, dstShard int, fromTier, toTier Tier, pod int, name string) *simnet.Link {
		id := f.nextPathlet
		f.nextPathlet++
		rank := f.allocRank()
		if from == nil && to == nil {
			return nil
		}
		pathlet := id
		spec := cfg.FabricLink
		lcfg := simnet.LinkConfig{
			Rate: spec.Rate, Delay: spec.Delay,
			QueueCap: spec.QueueCap, ECNThreshold: spec.ECNThreshold,
			Pathlet: &pathlet, StampECN: true,
			Rank: rank,
		}
		if from != nil && to != nil {
			l := f.Net.Connect(to, lcfg, name)
			from.AddEgress(l)
			f.trunks = append(f.trunks, &Trunk{
				Link: l, From: from, To: to,
				FromTier: fromTier, ToTier: toTier, Pod: pod, Pathlet: id,
			})
			return l
		}
		if from != nil {
			// Boundary egress: queue and wire live here, delivery crosses.
			lcfg.Remote = remote
			l := f.Net.Connect(remoteNode{id: toID}, lcfg, name)
			from.AddEgress(l)
			f.trunks = append(f.trunks, &Trunk{
				Link: l, From: from, To: nil,
				FromTier: fromTier, ToTier: toTier, Pod: pod, Pathlet: id,
			})
			cut.Out[l] = CutPort{Rank: rank, DstShard: dstShard}
			return l
		}
		// Boundary ingress: a rank-keyed mirror of the owning shard's egress.
		l := f.Net.Connect(to, lcfg, name)
		cut.In[rank] = l
		return l
	}

	// Full leaf↔spine mesh.
	ups := make([][]*simnet.Link, cfg.Leaves)   // [leaf][spine]
	downs := make([][]*simnet.Link, cfg.Leaves) // [leaf][spine]
	for li := 0; li < cfg.Leaves; li++ {
		ups[li] = make([]*simnet.Link, cfg.Spines)
		downs[li] = make([]*simnet.Link, cfg.Spines)
		leafShard := shard
		if plan != nil {
			leafShard = plan.PodShard[li]
		}
		for si := 0; si < cfg.Spines; si++ {
			spineShard := shard
			if plan != nil {
				spineShard = plan.CoreShard[si]
			}
			ups[li][si] = addTrunk(leaves[li], spines[si], spineID(si), spineShard,
				TierLeaf, TierSpine, li, fmt.Sprintf("leaf%d-spine%d", li, si))
			downs[li][si] = addTrunk(spines[si], leaves[li], leafID(li), leafShard,
				TierSpine, TierLeaf, li, fmt.Sprintf("spine%d-leaf%d", si, li))
		}
	}

	// Routes: leaves spread remote traffic across every spine; spines have
	// one way down to each leaf. Destination IDs come from the hostIDs
	// inventory, which is populated for owned and unowned hosts alike.
	for hi := 0; hi < cfg.Leaves*cfg.HostsPerLeaf; hi++ {
		hid := f.HostID(hi)
		hl := f.hostPod[hi]
		for li := range leaves {
			if li == hl || leaves[li] == nil {
				continue // local access route installed by addHost
			}
			for si := range spines {
				leaves[li].AddRoute(hid, ups[li][si])
			}
		}
		for si := range spines {
			if spines[si] != nil {
				spines[si].AddRoute(hid, downs[hl][si])
			}
		}
	}

	// Size the packet pool and event arena from the owned element counts
	// (see buildFatTree for rationale and the caps).
	ownedHosts := 0
	for _, h := range f.hosts {
		if h != nil {
			ownedHosts++
		}
	}
	nLinks := len(f.Net.Links())
	pkts := ownedHosts + nLinks/4 + 256
	if pkts > 1<<16 {
		pkts = 1 << 16
	}
	f.Net.PreallocPackets(pkts)
	events := nLinks + 4*ownedHosts + 1024
	if events > 1<<18 {
		events = 1 << 18
	}
	f.Eng.Reserve(events)
	return f, cut
}
