package shard

import (
	"testing"
	"time"

	"mtp/internal/simnet"
	"mtp/internal/topo"
)

// TestShardConstructionParity checks that the partitioned build reproduces
// the unsharded build's identity assignments: host IDs, pod ownership,
// trunk ranks (each exactly once across shards), and a mirror ingress in
// the destination shard for every boundary egress.
func TestShardConstructionParity(t *testing.T) {
	cfg := topo.FatTreeConfig{K: 4, Seed: 7}
	full := topo.NewFatTree(cfg)
	for _, S := range []int{2, 4} {
		c := NewFatTreeCluster(cfg, S)
		owners := make([]int, full.NumHosts())
		for i := range owners {
			owners[i] = -1
		}
		ranks := make(map[int]int) // rank -> owning shard
		for s := 0; s < S; s++ {
			fab := c.Shard(s).Fab
			if fab.NumHosts() != full.NumHosts() {
				t.Fatalf("S=%d shard %d: %d hosts, want %d", S, s, fab.NumHosts(), full.NumHosts())
			}
			for i := 0; i < fab.NumHosts(); i++ {
				if fab.HostID(i) != full.Host(i).ID() {
					t.Fatalf("S=%d shard %d host %d: ID %d, want %d", S, s, i, fab.HostID(i), full.Host(i).ID())
				}
				if fab.OwnsHost(i) {
					if owners[i] != -1 {
						t.Fatalf("S=%d host %d owned by shards %d and %d", S, i, owners[i], s)
					}
					owners[i] = s
					if fab.Host(i).ID() != fab.HostID(i) {
						t.Fatalf("S=%d shard %d host %d: materialized ID mismatch", S, s, i)
					}
				}
			}
			for _, tr := range fab.Trunks() {
				r := tr.Link.Config().Rank
				if prev, dup := ranks[r]; dup {
					t.Fatalf("S=%d trunk rank %d owned by shards %d and %d", S, r, prev, s)
				}
				ranks[r] = s
			}
		}
		for i, o := range owners {
			if o == -1 {
				t.Fatalf("S=%d host %d owned by no shard", S, i)
			}
		}
		if len(ranks) != len(full.Trunks()) {
			t.Fatalf("S=%d: %d trunk ranks across shards, want %d", S, len(ranks), len(full.Trunks()))
		}
		for s := 0; s < S; s++ {
			for l, port := range c.Shard(s).Cut.Out {
				mirror := c.Shard(port.DstShard).Cut.In[port.Rank]
				if mirror == nil {
					t.Fatalf("S=%d: no mirror in shard %d for cut link %s (rank %d)", S, port.DstShard, l.Name(), port.Rank)
				}
				if mirror.Name() != l.Name() || mirror.Config().Rank != l.Config().Rank {
					t.Fatalf("S=%d: mirror identity mismatch for %s", S, l.Name())
				}
			}
		}
	}
}

// TestShardDeliveryMatchesUnsharded drives raw packets between hosts in
// different pods and asserts that every delivery lands at the same virtual
// time, in the same order, whether the fabric runs on one engine or on a
// 2- or 4-shard cluster.
func TestShardDeliveryMatchesUnsharded(t *testing.T) {
	cfg := topo.FatTreeConfig{K: 4, Seed: 3}
	type arrival struct {
		host int
		src  simnet.NodeID
		size int
		at   time.Duration
	}
	// flows: (src host, dst host, packet count, size, flow id). Pairs cross
	// pods in both directions and converge on host 15 to create equal-time
	// candidates at the core tier.
	flows := []struct {
		src, dst, n, size int
		flow              uint64
	}{
		{0, 15, 8, 1500, 11},
		{1, 15, 8, 1500, 12},
		{15, 0, 8, 1500, 13},
		{5, 12, 4, 700, 14},
		{12, 5, 4, 700, 15},
	}
	drive := func(fab *topo.Fabric, owns func(i int) bool, record func(a arrival)) {
		for i := 0; i < fab.NumHosts(); i++ {
			if !owns(i) {
				continue
			}
			i := i
			fab.Host(i).SetHandler(func(pkt *simnet.Packet) {
				record(arrival{host: i, src: pkt.Src, size: pkt.Size, at: fab.Eng.Now()})
			})
		}
		for _, f := range flows {
			if !owns(f.src) {
				continue
			}
			src, dst, size, flow := fab.Host(f.src), fab.HostID(f.dst), f.size, f.flow
			for k := 0; k < f.n; k++ {
				fab.Eng.Schedule(0, func() {
					pkt := fab.Net.AllocPacket()
					pkt.Dst, pkt.Size, pkt.FlowID = dst, size, flow
					src.Send(pkt)
				})
			}
		}
	}

	var want []arrival
	full := topo.NewFatTree(cfg)
	drive(full, func(int) bool { return true }, func(a arrival) { want = append(want, a) })
	full.Eng.Run(time.Second)
	if len(want) == 0 {
		t.Fatal("unsharded run delivered nothing")
	}

	for _, S := range []int{2, 4} {
		c := NewFatTreeCluster(cfg, S)
		// Arrivals recorded per shard, then merged by (time, host): within
		// one timestamp no host receives twice (its downlink serializes), so
		// the merged order is well-defined and comparable.
		got := make([][]arrival, S)
		for s := 0; s < S; s++ {
			s := s
			fab := c.Shard(s).Fab
			drive(fab, fab.OwnsHost, func(a arrival) { got[s] = append(got[s], a) })
		}
		st := c.Run(time.Second)
		if st.Crossings == 0 {
			t.Fatalf("S=%d: no cross-shard packets — test exercises nothing", S)
		}
		var merged []arrival
		idx := make([]int, S)
		for {
			best := -1
			for s := 0; s < S; s++ {
				if idx[s] >= len(got[s]) {
					continue
				}
				a := got[s][idx[s]]
				if best == -1 {
					best = s
					continue
				}
				b := got[best][idx[best]]
				if a.at < b.at || (a.at == b.at && a.host < b.host) {
					best = s
				}
			}
			if best == -1 {
				break
			}
			merged = append(merged, got[best][idx[best]])
			idx[best]++
		}
		if len(merged) != len(want) {
			t.Fatalf("S=%d: %d arrivals, want %d", S, len(merged), len(want))
		}
		// The unsharded reference needs the same (time, host) normalization:
		// equal-time arrivals at different hosts are recorded in rank order
		// there, which the per-host merge key reproduces only up to host
		// order. Sort both sides identically.
		sortArr := func(as []arrival) {
			for i := 1; i < len(as); i++ {
				for j := i; j > 0 && (as[j].at < as[j-1].at || (as[j].at == as[j-1].at && as[j].host < as[j-1].host)); j-- {
					as[j], as[j-1] = as[j-1], as[j]
				}
			}
		}
		sortArr(want)
		sortArr(merged)
		for i := range want {
			if merged[i] != want[i] {
				t.Fatalf("S=%d arrival %d: got %+v, want %+v", S, i, merged[i], want[i])
			}
		}
	}
}
