package shard

import (
	"runtime"
	"testing"
	"time"

	"mtp/internal/simnet"
	"mtp/internal/topo"
)

// arrivalRec is one raw-packet delivery, the unit of cross-mode comparison.
type arrivalRec struct {
	host int
	src  simnet.NodeID
	size int
	at   time.Duration
}

// driveRaw installs recording handlers on every owned host and schedules the
// given flows (n packets each at t=0) from owned sources. Raw packets skip
// the transport so the workload is pure fabric: links, switches, crossings.
func driveRaw(fab *topo.Fabric, owns func(int) bool, flows []rawFlow, record func(arrivalRec)) {
	for i := 0; i < fab.NumHosts(); i++ {
		if !owns(i) {
			continue
		}
		i := i
		fab.Host(i).SetHandler(func(pkt *simnet.Packet) {
			record(arrivalRec{host: i, src: pkt.Src, size: pkt.Size, at: fab.Eng.Now()})
		})
	}
	for _, f := range flows {
		if !owns(f.src) {
			continue
		}
		src, dst, size, flow := fab.Host(f.src), fab.HostID(f.dst), f.size, f.flow
		for k := 0; k < f.n; k++ {
			fab.Eng.Schedule(0, func() {
				pkt := fab.Net.AllocPacket()
				pkt.Dst, pkt.Size, pkt.FlowID = dst, size, flow
				src.Send(pkt)
			})
		}
	}
}

type rawFlow struct {
	src, dst, n, size int
	flow              uint64
}

// mergeByTimeHost merges per-shard arrival streams into one sequence ordered
// by (time, host) — well-defined because a host's downlink serializes its
// deliveries within a timestamp.
func mergeByTimeHost(got [][]arrivalRec) []arrivalRec {
	var merged []arrivalRec
	for _, g := range got {
		merged = append(merged, g...)
	}
	for i := 1; i < len(merged); i++ {
		for j := i; j > 0 && (merged[j].at < merged[j-1].at || (merged[j].at == merged[j-1].at && merged[j].host < merged[j-1].host)); j-- {
			merged[j], merged[j-1] = merged[j-1], merged[j]
		}
	}
	return merged
}

func runClusterRaw(c *Cluster, flows []rawFlow, horizon time.Duration) ([]arrivalRec, RunStats) {
	S := c.NumShards()
	got := make([][]arrivalRec, S)
	for s := 0; s < S; s++ {
		s := s
		fab := c.Shard(s).Fab
		driveRaw(fab, fab.OwnsHost, flows, func(a arrivalRec) { got[s] = append(got[s], a) })
	}
	st := c.Run(horizon)
	return mergeByTimeHost(got), st
}

// crossPodFlows builds a workload that keeps several pods busy at staggered
// densities, so batched rounds actually open multi-window spans while
// crossings keep arriving.
func crossPodFlows(hosts int) []rawFlow {
	last := hosts - 1
	return []rawFlow{
		{0, last, 12, 1500, 21},
		{1, last, 12, 1500, 22},
		{last, 0, 12, 1500, 23},
		{2, hosts / 2, 6, 700, 24},
		{hosts / 2, 2, 6, 700, 25},
		{hosts/2 + 1, 1, 3, 9000, 26},
	}
}

// TestBatchedMatchesUnbatched pins the batching soundness result across
// seeds: the free-floating batched bound (MaxBatch=0) must produce exactly
// the arrival stream of the per-window legacy schedule (MaxBatch=1), which
// in turn is the unsharded stream (TestShardDeliveryMatchesUnsharded). Any
// unsound commit bound shows up here as a reordered or time-shifted
// delivery.
func TestBatchedMatchesUnbatched(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		cfg := topo.FatTreeConfig{K: 4, Seed: seed}
		flows := crossPodFlows(16)

		legacy := NewFatTreeCluster(cfg, 4)
		legacy.MaxBatch = 1
		wantArr, wantSt := runClusterRaw(legacy, flows, time.Second)
		if wantSt.Crossings == 0 {
			t.Fatalf("seed %d: no crossings — workload exercises nothing", seed)
		}

		batched := NewFatTreeCluster(cfg, 4)
		gotArr, gotSt := runClusterRaw(batched, flows, time.Second)

		if len(gotArr) != len(wantArr) {
			t.Fatalf("seed %d: batched delivered %d, unbatched %d", seed, len(gotArr), len(wantArr))
		}
		for i := range wantArr {
			if gotArr[i] != wantArr[i] {
				t.Fatalf("seed %d arrival %d: batched %+v, unbatched %+v", seed, i, gotArr[i], wantArr[i])
			}
		}
		// The point of batching: strictly fewer barrier rounds on the same run.
		if gotSt.Rounds >= wantSt.Rounds {
			t.Errorf("seed %d: batched rounds %d not below unbatched %d", seed, gotSt.Rounds, wantSt.Rounds)
		}
	}
}

// TestLeafSpineClusterMatchesUnsharded is the leaf-spine twin of
// TestShardDeliveryMatchesUnsharded: identical arrival streams whether the
// rack-partitioned fabric runs on one engine or a 2- or 4-shard cluster.
func TestLeafSpineClusterMatchesUnsharded(t *testing.T) {
	cfg := topo.LeafSpineConfig{Leaves: 4, Spines: 3, HostsPerLeaf: 4, Seed: 5}
	flows := crossPodFlows(16)

	var want []arrivalRec
	full := topo.NewLeafSpine(cfg)
	driveRaw(full, func(int) bool { return true }, flows, func(a arrivalRec) { want = append(want, a) })
	full.Eng.Run(time.Second)
	if len(want) == 0 {
		t.Fatal("unsharded run delivered nothing")
	}
	want = mergeByTimeHost([][]arrivalRec{want})

	for _, S := range []int{2, 4} {
		c := NewLeafSpineCluster(cfg, S)
		got, st := runClusterRaw(c, flows, time.Second)
		if st.Crossings == 0 {
			t.Fatalf("S=%d: no cross-shard packets", S)
		}
		if len(got) != len(want) {
			t.Fatalf("S=%d: %d arrivals, want %d", S, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("S=%d arrival %d: got %+v, want %+v", S, i, got[i], want[i])
			}
		}
	}
}

// TestLargeFabricDeterminismRace runs a k=48 fat-tree (27648 hosts) on 8
// shards twice and against the single-engine reference, asserting identical
// arrival streams. Its job is to put the full barrier/batching/recycling
// machinery under the race detector at a scale where every code path (cut
// exchange, outbox recycling, in-window tightening) fires; raw packets keep
// the run construction-bound. Skipped in -short mode.
func TestLargeFabricDeterminismRace(t *testing.T) {
	if testing.Short() {
		t.Skip("k=48 construction is seconds-scale; skipping in short mode")
	}
	const k = 48
	hosts := k * k * k / 4
	cfg := topo.FatTreeConfig{K: k, Seed: 9}
	flows := crossPodFlows(hosts)
	horizon := 500 * time.Microsecond

	var want []arrivalRec
	full := topo.NewFatTree(cfg)
	driveRaw(full, func(int) bool { return true }, flows, func(a arrivalRec) { want = append(want, a) })
	full.Eng.Run(horizon)
	if len(want) == 0 {
		t.Fatal("unsharded run delivered nothing")
	}
	want = mergeByTimeHost([][]arrivalRec{want})

	for rep := 0; rep < 2; rep++ {
		c := NewFatTreeCluster(cfg, 8)
		got, st := runClusterRaw(c, flows, horizon)
		if st.Crossings == 0 {
			t.Fatalf("rep %d: no cross-shard packets", rep)
		}
		if len(got) != len(want) {
			t.Fatalf("rep %d: %d arrivals, want %d", rep, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rep %d arrival %d: got %+v, want %+v", rep, i, got[i], want[i])
			}
		}
	}
}

// TestShardSteadyStateAllocs pins the pool-tuning result: once the packet
// free-lists, event arenas, and exchange buffers have warmed up, the sharded
// incast hot path allocates (essentially) nothing. The budget absorbs the
// per-Run goroutine spawns and runtime bookkeeping; a regression to
// per-crossing or per-packet allocation blows past it by orders of
// magnitude.
func TestShardSteadyStateAllocs(t *testing.T) {
	cfg := topo.FatTreeConfig{K: 4, Seed: 2}
	c := NewFatTreeCluster(cfg, 4)
	const sink = 15
	// Closed-loop incast: every delivery at the sink triggers a reply, every
	// reply re-triggers the sender, so traffic (and crossings) never drain.
	for s := 0; s < c.NumShards(); s++ {
		fab := c.Shard(s).Fab
		for i := 0; i < fab.NumHosts(); i++ {
			if !fab.OwnsHost(i) {
				continue
			}
			i := i
			fab := fab
			fab.Host(i).SetHandler(func(pkt *simnet.Packet) {
				reply := fab.Net.AllocPacket()
				reply.Dst, reply.Size, reply.FlowID = pkt.Src, 1500, pkt.FlowID
				fab.Host(i).Send(reply)
			})
			if i != sink {
				fab.Eng.Schedule(0, func() {
					pkt := fab.Net.AllocPacket()
					pkt.Dst, pkt.Size, pkt.FlowID = fab.HostID(sink), 1500, uint64(100+i)
					src := fab.Host(i)
					src.Send(pkt)
				})
			}
		}
	}
	// Warmup grows every pool to steady state.
	st := c.Run(2 * time.Millisecond)
	if st.Crossings == 0 {
		t.Fatal("warmup produced no crossings")
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	st2 := c.Run(6 * time.Millisecond)
	runtime.ReadMemStats(&after)
	allocs := after.Mallocs - before.Mallocs
	events := st2.Events - st.Events
	if events < 10000 {
		t.Fatalf("measure window executed only %d events", events)
	}
	// Budget: goroutine spawns, the done channel, and testing/runtime noise.
	// The window executes tens of thousands of events; per-event or
	// per-crossing allocation would cost tens of thousands of mallocs.
	if allocs > 500 {
		t.Errorf("steady-state window: %d mallocs over %d events (want ≤ 500)", allocs, events)
	}
	for s := 0; s < c.NumShards(); s++ {
		live, high, free := c.Shard(s).Fab.Net.PoolStats()
		// Conservation: checked-out plus free equals everything ever pooled,
		// which the high-water mark can never exceed.
		if high > live+free {
			t.Errorf("shard %d: pool high-water %d exceeds live %d + free %d", s, high, live, free)
		}
	}
}
