// Package shard runs one simulated fabric on several cooperating
// discrete-event engines — one per fat-tree pod group — to push experiment
// scale past what a single core can hold, without giving up the repo's
// central property: bit-identical, seed-reproducible runs.
//
// The synchronization scheme is conservative (no rollback). Every shard
// repeatedly (1) reports the earliest thing it could still do — its next
// local event or the earliest arrival in its outgoing packet batches — and
// hands each neighbour the batch destined for it; (2) takes the global
// minimum T of all reports; (3) runs its engine through a window opening at
// T. The lookahead L is the minimum propagation delay of any
// boundary-crossing link (topo.ShardPlan.Lookahead): a packet a neighbour
// transmits at or after its report spends at least that long on the wire.
// The classic window is [T, T+L); this implementation commits a batched
// window instead — each shard runs until the earliest instant any other
// shard can still act, plus L — which collapses the many rounds
// where one busy shard grinds through dense local work while the others sit
// on sparse timers (see Cluster.MaxBatch for the safety argument and the
// knob that restores single-window rounds). Windows jump — T is the global
// next-event time, not a fixed cadence — so idle stretches cost one barrier
// round instead of horizon/lookahead rounds.
//
// Determinism does not come from the barrier alone: within one timestamp,
// a single engine orders events by scheduling history, which shards cannot
// reproduce. The engine therefore orders equal-time events by an explicit
// priority first (sim's (time, pri, seq) key), and every topo-built link
// schedules its deliveries at priority DeliverPriBase+rank, with ranks
// assigned by global construction order. Cross-shard arrivals are injected
// through mirror links carrying the same rank, so the merged order is the
// unsharded order, event for event. Each shard checker still sees a legal
// serial execution, and internal/check's cross-shard accounting
// (ShardAccountant, MsgRegistry) keeps conservation and exactly-once
// invariants network-wide.
package shard

import (
	"fmt"
	"math"
	"time"

	"mtp/internal/simnet"
	"mtp/internal/topo"
	"mtp/internal/wire"
)

// never is the report of a shard with nothing left to do.
const never = time.Duration(math.MaxInt64)

// xfer is one packet crossing a shard boundary: the cut link's global rank,
// the absolute arrival time, and the packet's payload fields. Hdr, Data, and
// Payload are handed over by pointer, not copied: the transport allocates a
// fresh header per transmission and never touches it after the delivery that
// captured it here (link-level duplication clones first), so once the packet
// leaves via DeliverRemote the sending shard holds no reference. The channel
// exchange provides the happens-before edge that makes the handoff safe.
type xfer struct {
	rank int
	at   time.Duration

	src, dst simnet.NodeID
	size     int
	hdr      *wire.Header
	payload  any
	data     []byte

	ce, ecnCapable, trimmed, corrupted bool
	tenant                             int
	flowID                             uint64
}

// roundMsg is one shard's per-neighbour barrier message: its report, the
// batch of packets headed that way, and a spent batch buffer flowing back to
// its original owner. The recycle field is the allocation story for the
// steady state: the receiver of a batch returns its backing array (emptied)
// on the next round, so each directed pair settles into two alternating
// buffers and the exchange stops allocating entirely.
type roundMsg struct {
	next    time.Duration
	batch   []xfer
	recycle []xfer
}

// Shard is one partition: a partial fabric (owned pods + cores, with mirror
// links at the boundary) on its own engine.
type Shard struct {
	Index int
	Fab   *topo.Fabric
	Cut   *topo.ShardCut

	outbox    [][]xfer // per destination shard, filled during the window
	spent     [][]xfer // per source shard, consumed batches owed back
	crossings uint64
	rounds    uint64
}

// sink is the simnet.RemoteHook for one shard: it captures boundary
// deliveries into the outbox instead of scheduling them locally.
type sink struct{ s *Shard }

// DeliverRemote implements simnet.RemoteHook.
func (sk sink) DeliverRemote(l *simnet.Link, at time.Duration, pkt *simnet.Packet) {
	port, ok := sk.s.Cut.Out[l]
	if !ok {
		panic(fmt.Sprintf("shard: link %s has a remote hook but no cut port", l.Name()))
	}
	x := xfer{
		rank: port.Rank, at: at,
		src: pkt.Src, dst: pkt.Dst, size: pkt.Size,
		hdr: pkt.Hdr, payload: pkt.Payload, data: pkt.Data,
		ce: pkt.CE, ecnCapable: pkt.ECNCapable,
		trimmed: pkt.Trimmed, corrupted: pkt.Corrupted,
		tenant: pkt.Tenant, flowID: pkt.FlowID,
	}
	sk.s.outbox[port.DstShard] = append(sk.s.outbox[port.DstShard], x)
	sk.s.Fab.Net.ReleasePacket(pkt)
	// This crossing can wake its destination at x.at — earlier than that
	// shard's barrier report promised — and the earliest echo lands here at
	// x.at + lookahead. Shrink the current batched window to that point:
	// everything already executed predates it (the crossing just departed),
	// so the committed prefix stays safe. Under single-window rounds the
	// bound is never binding (arrivals sit a full lookahead past the window
	// end), which is exactly why unbatched runs never needed it.
	sk.s.Fab.Eng.TightenRunLimit(at + sk.s.Cut.Lookahead)
}

// inject materializes a received batch in this shard: each packet is
// allocated from the local pool and scheduled for delivery off the mirror
// link at its recorded arrival time. The mirror's rank-keyed priority slots
// it into exactly the position the unsharded engine would have used; batch
// order is irrelevant because no two arrivals share (time, rank).
func (s *Shard) inject(batch []xfer) {
	for i := range batch {
		x := &batch[i]
		mirror := s.Cut.In[x.rank]
		if mirror == nil {
			panic(fmt.Sprintf("shard %d: no mirror link for rank %d", s.Index, x.rank))
		}
		pkt := s.Fab.Net.AllocPacket()
		pkt.Src, pkt.Dst, pkt.Size = x.src, x.dst, x.size
		pkt.Hdr, pkt.Payload, pkt.Data = x.hdr, x.payload, x.data
		pkt.CE, pkt.ECNCapable = x.ce, x.ecnCapable
		pkt.Trimmed, pkt.Corrupted = x.trimmed, x.corrupted
		pkt.Tenant, pkt.FlowID = x.tenant, x.flowID
		s.Fab.Net.InjectDeliver(mirror, x.at, pkt)
		s.crossings++
	}
}

// report is the earliest time anything can still happen because of this
// shard: its next local event or the earliest arrival it is about to hand a
// neighbour. The outgoing minimum is also returned separately — the batched
// window bound needs it (see runShard), because handed-over arrivals can
// wake a neighbour earlier than that neighbour's own report admits.
func (s *Shard) report() (next, outMin time.Duration) {
	next, outMin = never, never
	if at, ok := s.Fab.Eng.NextEventAt(); ok {
		next = at
	}
	for _, batch := range s.outbox {
		for i := range batch {
			if batch[i].at < outMin {
				outMin = batch[i].at
			}
		}
	}
	if outMin < next {
		next = outMin
	}
	return next, outMin
}

// Cluster is a set of shards jointly simulating one fabric.
type Cluster struct {
	plan   topo.ShardPlan
	shards []*Shard
	// chans[i][j] carries shard i's per-round message to shard j. Buffered
	// by one so every shard can send all its messages before receiving any —
	// the exchange doubles as the barrier.
	chans [][]chan roundMsg

	// MaxBatch bounds how many lookahead windows one barrier round may
	// commit. Each round, a shard may safely run past the classic window
	// [T, T+L) all the way to min(min_{j≠s} next_j, outMin_s)+L — the
	// earliest instant any OTHER shard can still act, counting both their
	// reports and the batches this shard just handed them — because
	// anything born there spends at least the lookahead L on the wire
	// before it can land here (see runShard for the full argument).
	// MaxBatch <= 0 (the default) lets the bound float freely; MaxBatch ==
	// 1 reproduces the unbatched schedule exactly, window for window —
	// useful for equivalence tests and bisection.
	MaxBatch int
}

// NewFatTreeCluster partitions cfg across shards engines. Shard 0's fabric
// is returned by Shard(0), etc.; callers attach endpoints to each shard's
// owned hosts (Fabric.OwnsHost) and schedule initial work before Run.
func NewFatTreeCluster(cfg topo.FatTreeConfig, shards int) *Cluster {
	plan := topo.PlanFatTreeShards(cfg, shards)
	return newCluster(plan, func(s int, remote simnet.RemoteHook) (*topo.Fabric, *topo.ShardCut) {
		return topo.NewFatTreeShard(cfg, plan, s, remote)
	})
}

// NewLeafSpineCluster partitions cfg rack-wise across shards engines: each
// shard owns a contiguous block of leaves with their hosts, spines are dealt
// round-robin, and the leaf↔spine trunks form the cut (see
// topo.PlanLeafSpineShards). Usage is identical to NewFatTreeCluster.
func NewLeafSpineCluster(cfg topo.LeafSpineConfig, shards int) *Cluster {
	plan := topo.PlanLeafSpineShards(cfg, shards)
	return newCluster(plan, func(s int, remote simnet.RemoteHook) (*topo.Fabric, *topo.ShardCut) {
		return topo.NewLeafSpineShard(cfg, plan, s, remote)
	})
}

// newCluster assembles the shard array and barrier channels around a
// topology-specific slice builder.
func newCluster(plan topo.ShardPlan, build func(s int, remote simnet.RemoteHook) (*topo.Fabric, *topo.ShardCut)) *Cluster {
	shards := plan.Shards
	c := &Cluster{plan: plan, shards: make([]*Shard, shards), chans: make([][]chan roundMsg, shards)}
	for i := 0; i < shards; i++ {
		c.chans[i] = make([]chan roundMsg, shards)
		for j := 0; j < shards; j++ {
			if i != j {
				c.chans[i][j] = make(chan roundMsg, 1)
			}
		}
	}
	for s := 0; s < shards; s++ {
		sh := &Shard{Index: s, outbox: make([][]xfer, shards), spent: make([][]xfer, shards)}
		sh.Fab, sh.Cut = build(s, sink{sh})
		c.shards[s] = sh
	}
	return c
}

// NumShards returns the shard count.
func (c *Cluster) NumShards() int { return len(c.shards) }

// Shard returns shard i.
func (c *Cluster) Shard(i int) *Shard { return c.shards[i] }

// Plan returns the partition.
func (c *Cluster) Plan() topo.ShardPlan { return c.plan }

// RunStats summarizes one parallel run.
type RunStats struct {
	// Events is the total events executed across all shards.
	Events uint64
	// Rounds is the number of barrier rounds.
	Rounds uint64
	// Crossings is the number of packets that crossed a shard boundary.
	Crossings uint64
	// Wall is the real time the parallel run took.
	Wall time.Duration
}

// EventsPerSec is the aggregate event throughput.
func (st RunStats) EventsPerSec() float64 {
	if st.Wall <= 0 {
		return 0
	}
	return float64(st.Events) / st.Wall.Seconds()
}

// Run executes the cluster to the horizon (inclusive, matching
// sim.Engine.Run semantics) and returns aggregate statistics. One goroutine
// per shard; Run returns when every shard has passed the horizon.
func (c *Cluster) Run(horizon time.Duration) RunStats {
	start := time.Now()
	if len(c.shards) == 1 {
		s := c.shards[0]
		s.Fab.Eng.Run(horizon)
		return RunStats{Events: s.Fab.Eng.Processed(), Rounds: 1, Wall: time.Since(start)}
	}
	if c.plan.Lookahead <= 0 {
		panic("shard: non-positive lookahead")
	}
	done := make(chan struct{})
	for _, s := range c.shards {
		go func(s *Shard) {
			defer func() { done <- struct{}{} }()
			c.runShard(s, horizon)
		}(s)
	}
	for range c.shards {
		<-done
	}
	st := RunStats{Wall: time.Since(start), Rounds: c.shards[0].rounds}
	for _, s := range c.shards {
		st.Events += s.Fab.Eng.Processed()
		st.Crossings += s.crossings
	}
	return st
}

func (c *Cluster) runShard(s *Shard, horizon time.Duration) {
	eng := s.Fab.Eng
	L := c.plan.Lookahead
	for {
		next, outMin := s.report()
		// Exchange: send every neighbour our report and its batch, then
		// collect theirs. The one-slot channel buffers make the full send
		// phase non-blocking, so the pairwise exchange is deadlock-free and
		// acts as the barrier. Each message also carries back the batch
		// buffer consumed from that neighbour last round.
		for j := range c.shards {
			if j == s.Index {
				continue
			}
			c.chans[s.Index][j] <- roundMsg{next: next, batch: s.outbox[j], recycle: s.spent[j]}
			s.outbox[j] = nil
			s.spent[j] = nil
		}
		T := next
		minOther := never
		for j := range c.shards {
			if j == s.Index {
				continue
			}
			m := <-c.chans[j][s.Index]
			if m.next < T {
				T = m.next
			}
			if m.next < minOther {
				minOther = m.next
			}
			s.inject(m.batch)
			if m.batch != nil {
				// Hand the buffer back next round; clear it first so the
				// consumed headers and payloads are not pinned meanwhile.
				clear(m.batch)
				s.spent[j] = m.batch[:0]
			}
			if m.recycle != nil {
				// A buffer we filled earlier, emptied by j: reuse it for
				// the next outgoing batch instead of growing a fresh one.
				s.outbox[j] = m.recycle
			}
		}
		// Every shard computed the same T, so all of them terminate on the
		// same round.
		if T > horizon {
			return
		}
		// Batched window: the classic conservative bound is [T, T+L), but a
		// tighter per-shard bound holds. Everything any other shard does
		// this round happens at or after bound = min(minOther, outMin):
		// neighbour j's own pending work starts at next_j >= minOther, and
		// the only arrivals injected into j this round that undercut that
		// are the ones THIS shard just handed over, none earlier than
		// outMin (batches from a third shard i start at next_i >= minOther
		// too). A crossing born at time t reaches us no sooner than t+L, so
		// nothing can land strictly before bound+L and this shard may
		// commit that whole span in one round. RunBefore is exclusive, so
		// an arrival at exactly bound+L falls in a later window. When the
		// laggard is this shard's own dense local work (incast: minOther
		// and outMin both far ahead), the bound stretches over many idle
		// neighbour windows at once.
		bound := minOther
		if outMin < bound {
			bound = outMin
		}
		var limit time.Duration
		if bound >= horizon {
			// Nothing can reach us before the horizon (bound may be
			// `never`, so adding L could overflow): run out the remainder.
			limit = horizon + 1
		} else {
			limit = bound + L
			if limit > horizon {
				// Cap at horizon inclusively: Run(horizon) executes events
				// at exactly the horizon, so the strict window must reach
				// past it.
				limit = horizon + 1
			}
		}
		if c.MaxBatch > 0 {
			capped := T + time.Duration(c.MaxBatch)*L
			if capped > horizon {
				capped = horizon + 1
			}
			if capped < limit {
				limit = capped
			}
		}
		eng.RunBefore(limit)
		s.rounds++
	}
}
