// Package shard runs one simulated fabric on several cooperating
// discrete-event engines — one per fat-tree pod group — to push experiment
// scale past what a single core can hold, without giving up the repo's
// central property: bit-identical, seed-reproducible runs.
//
// The synchronization scheme is conservative (no rollback). Every shard
// repeatedly (1) reports the earliest thing it could still do — its next
// local event or the earliest arrival in its outgoing packet batches — and
// hands each neighbour the batch destined for it; (2) takes the global
// minimum T of all reports; (3) runs its engine through the window
// [T, T+lookahead). The lookahead is the minimum propagation delay of any
// boundary-crossing link (topo.ShardPlan.Lookahead): a packet a neighbour
// transmits at or after T spends at least that long on the wire, so nothing
// can arrive inside the window that is not already known at its start.
// Windows jump — T is the global next-event time, not a fixed cadence — so
// idle stretches cost one barrier round instead of horizon/lookahead rounds.
//
// Determinism does not come from the barrier alone: within one timestamp,
// a single engine orders events by scheduling history, which shards cannot
// reproduce. The engine therefore orders equal-time events by an explicit
// priority first (sim's (time, pri, seq) key), and every topo-built link
// schedules its deliveries at priority DeliverPriBase+rank, with ranks
// assigned by global construction order. Cross-shard arrivals are injected
// through mirror links carrying the same rank, so the merged order is the
// unsharded order, event for event. Each shard checker still sees a legal
// serial execution, and internal/check's cross-shard accounting
// (ShardAccountant, MsgRegistry) keeps conservation and exactly-once
// invariants network-wide.
package shard

import (
	"fmt"
	"math"
	"time"

	"mtp/internal/simnet"
	"mtp/internal/topo"
	"mtp/internal/wire"
)

// never is the report of a shard with nothing left to do.
const never = time.Duration(math.MaxInt64)

// xfer is one packet crossing a shard boundary: the cut link's global rank,
// the absolute arrival time, and the packet's payload fields. The header is
// a deep copy (links mutate headers in flight); Data and Payload are shared
// with the sending shard and are read-only by convention — the barrier
// exchange provides the happens-before edge.
type xfer struct {
	rank int
	at   time.Duration

	src, dst simnet.NodeID
	size     int
	hdr      *wire.Header
	payload  any
	data     []byte

	ce, ecnCapable, trimmed, corrupted bool
	tenant                             int
	flowID                             uint64
}

// roundMsg is one shard's per-neighbour barrier message: its report and the
// batch of packets headed that way.
type roundMsg struct {
	next  time.Duration
	batch []xfer
}

// Shard is one partition: a partial fabric (owned pods + cores, with mirror
// links at the boundary) on its own engine.
type Shard struct {
	Index int
	Fab   *topo.Fabric
	Cut   *topo.ShardCut

	outbox    [][]xfer // per destination shard, filled during the window
	crossings uint64
	rounds    uint64
}

// sink is the simnet.RemoteHook for one shard: it captures boundary
// deliveries into the outbox instead of scheduling them locally.
type sink struct{ s *Shard }

// DeliverRemote implements simnet.RemoteHook.
func (sk sink) DeliverRemote(l *simnet.Link, at time.Duration, pkt *simnet.Packet) {
	port, ok := sk.s.Cut.Out[l]
	if !ok {
		panic(fmt.Sprintf("shard: link %s has a remote hook but no cut port", l.Name()))
	}
	x := xfer{
		rank: port.Rank, at: at,
		src: pkt.Src, dst: pkt.Dst, size: pkt.Size,
		payload: pkt.Payload, data: pkt.Data,
		ce: pkt.CE, ecnCapable: pkt.ECNCapable,
		trimmed: pkt.Trimmed, corrupted: pkt.Corrupted,
		tenant: pkt.Tenant, flowID: pkt.FlowID,
	}
	if pkt.Hdr != nil {
		x.hdr = pkt.Hdr.Clone()
	}
	sk.s.outbox[port.DstShard] = append(sk.s.outbox[port.DstShard], x)
	sk.s.Fab.Net.ReleasePacket(pkt)
}

// inject materializes a received batch in this shard: each packet is
// allocated from the local pool and scheduled for delivery off the mirror
// link at its recorded arrival time. The mirror's rank-keyed priority slots
// it into exactly the position the unsharded engine would have used; batch
// order is irrelevant because no two arrivals share (time, rank).
func (s *Shard) inject(batch []xfer) {
	for i := range batch {
		x := &batch[i]
		mirror := s.Cut.In[x.rank]
		if mirror == nil {
			panic(fmt.Sprintf("shard %d: no mirror link for rank %d", s.Index, x.rank))
		}
		pkt := s.Fab.Net.AllocPacket()
		pkt.Src, pkt.Dst, pkt.Size = x.src, x.dst, x.size
		pkt.Hdr, pkt.Payload, pkt.Data = x.hdr, x.payload, x.data
		pkt.CE, pkt.ECNCapable = x.ce, x.ecnCapable
		pkt.Trimmed, pkt.Corrupted = x.trimmed, x.corrupted
		pkt.Tenant, pkt.FlowID = x.tenant, x.flowID
		s.Fab.Net.InjectDeliver(mirror, x.at, pkt)
		s.crossings++
	}
}

// report is the earliest time anything can still happen because of this
// shard: its next local event or the earliest arrival it is about to hand a
// neighbour.
func (s *Shard) report() time.Duration {
	next := never
	if at, ok := s.Fab.Eng.NextEventAt(); ok {
		next = at
	}
	for _, batch := range s.outbox {
		for i := range batch {
			if batch[i].at < next {
				next = batch[i].at
			}
		}
	}
	return next
}

// Cluster is a set of shards jointly simulating one fabric.
type Cluster struct {
	plan   topo.ShardPlan
	shards []*Shard
	// chans[i][j] carries shard i's per-round message to shard j. Buffered
	// by one so every shard can send all its messages before receiving any —
	// the exchange doubles as the barrier.
	chans [][]chan roundMsg
}

// NewFatTreeCluster partitions cfg across shards engines. Shard 0's fabric
// is returned by Shard(0), etc.; callers attach endpoints to each shard's
// owned hosts (Fabric.OwnsHost) and schedule initial work before Run.
func NewFatTreeCluster(cfg topo.FatTreeConfig, shards int) *Cluster {
	plan := topo.PlanFatTreeShards(cfg, shards)
	c := &Cluster{plan: plan, shards: make([]*Shard, shards), chans: make([][]chan roundMsg, shards)}
	for i := 0; i < shards; i++ {
		c.chans[i] = make([]chan roundMsg, shards)
		for j := 0; j < shards; j++ {
			if i != j {
				c.chans[i][j] = make(chan roundMsg, 1)
			}
		}
	}
	for s := 0; s < shards; s++ {
		sh := &Shard{Index: s, outbox: make([][]xfer, shards)}
		sh.Fab, sh.Cut = topo.NewFatTreeShard(cfg, plan, s, sink{sh})
		c.shards[s] = sh
	}
	return c
}

// NumShards returns the shard count.
func (c *Cluster) NumShards() int { return len(c.shards) }

// Shard returns shard i.
func (c *Cluster) Shard(i int) *Shard { return c.shards[i] }

// Plan returns the partition.
func (c *Cluster) Plan() topo.ShardPlan { return c.plan }

// RunStats summarizes one parallel run.
type RunStats struct {
	// Events is the total events executed across all shards.
	Events uint64
	// Rounds is the number of barrier rounds.
	Rounds uint64
	// Crossings is the number of packets that crossed a shard boundary.
	Crossings uint64
	// Wall is the real time the parallel run took.
	Wall time.Duration
}

// EventsPerSec is the aggregate event throughput.
func (st RunStats) EventsPerSec() float64 {
	if st.Wall <= 0 {
		return 0
	}
	return float64(st.Events) / st.Wall.Seconds()
}

// Run executes the cluster to the horizon (inclusive, matching
// sim.Engine.Run semantics) and returns aggregate statistics. One goroutine
// per shard; Run returns when every shard has passed the horizon.
func (c *Cluster) Run(horizon time.Duration) RunStats {
	start := time.Now()
	if len(c.shards) == 1 {
		s := c.shards[0]
		s.Fab.Eng.Run(horizon)
		return RunStats{Events: s.Fab.Eng.Processed(), Rounds: 1, Wall: time.Since(start)}
	}
	if c.plan.Lookahead <= 0 {
		panic("shard: non-positive lookahead")
	}
	done := make(chan struct{})
	for _, s := range c.shards {
		go func(s *Shard) {
			defer func() { done <- struct{}{} }()
			c.runShard(s, horizon)
		}(s)
	}
	for range c.shards {
		<-done
	}
	st := RunStats{Wall: time.Since(start), Rounds: c.shards[0].rounds}
	for _, s := range c.shards {
		st.Events += s.Fab.Eng.Processed()
		st.Crossings += s.crossings
	}
	return st
}

func (c *Cluster) runShard(s *Shard, horizon time.Duration) {
	eng := s.Fab.Eng
	for {
		next := s.report()
		// Exchange: send every neighbour our report and its batch, then
		// collect theirs. The one-slot channel buffers make the full send
		// phase non-blocking, so the pairwise exchange is deadlock-free and
		// acts as the barrier.
		for j := range c.shards {
			if j == s.Index {
				continue
			}
			c.chans[s.Index][j] <- roundMsg{next: next, batch: s.outbox[j]}
			s.outbox[j] = nil
		}
		T := next
		for j := range c.shards {
			if j == s.Index {
				continue
			}
			m := <-c.chans[j][s.Index]
			if m.next < T {
				T = m.next
			}
			s.inject(m.batch)
		}
		// Every shard computed the same T, so all of them terminate on the
		// same round.
		if T > horizon {
			return
		}
		limit := T + c.plan.Lookahead
		if limit > horizon {
			// Cap at horizon inclusively: Run(horizon) executes events at
			// exactly the horizon, so the strict window must reach past it.
			limit = horizon + 1
		}
		eng.RunBefore(limit)
		s.rounds++
	}
}
