package check

import (
	"testing"

	"mtp/internal/sim"
	"mtp/internal/simnet"
)

func shardPair(t *testing.T) (*Checker, *Checker, *simnet.Link, *simnet.Link) {
	t.Helper()
	mk := func() (*Checker, *simnet.Link) {
		eng := sim.NewEngine(1)
		net := simnet.NewNetwork(eng)
		h := simnet.NewHost(net)
		l := net.Connect(h, simnet.LinkConfig{Rate: 1e9, Delay: 1, Rank: 7}, "cut")
		return New(eng, net), l
	}
	c1, l1 := mk()
	c2, l2 := mk()
	return c1, c2, l1, l2
}

// TestShardPacketHandoff walks a packet's conservation ledger across a
// shard boundary: the import opens a wire-phase entry the receiving shard
// can legally deliver (modeled here as a re-export), and the export closes
// the sender's entry so finalize sees nothing retained.
func TestShardPacketHandoff(t *testing.T) {
	c1, c2, l1, l2 := shardPair(t)
	pkt := &simnet.Packet{Src: 0, Dst: 1, Size: 100}

	// Exporting a packet the checker never saw transit the wire is a
	// conservation violation.
	c1.PacketShardExported(l1, pkt)
	if c1.Count() != 1 {
		t.Fatalf("export without wire transit: %d violations, want 1", c1.Count())
	}

	// Import opens a phaseWire entry on the mirror; a matching export (the
	// packet legally in flight on that link) closes it without complaint.
	c2.PacketShardImported(l2, pkt)
	c2.PacketShardExported(l2, pkt)
	if c2.Count() != 0 {
		t.Fatalf("import→export round trip: %d violations, want 0\n%v", c2.Count(), c2.Violations())
	}
	if len(c2.Finalize()) != 0 {
		t.Fatalf("finalize after handoff: %v", c2.Violations())
	}

	// Importing a pointer that aliases a live tracked packet is corruption.
	c2.PacketShardImported(l2, pkt)
	c2.PacketShardImported(l2, pkt)
	if c2.Count() != 1 {
		t.Fatalf("aliasing import: %d violations, want 1", c2.Count())
	}
}

// TestSharedMsgRegistry checks the cross-shard exactly-once machinery: a
// message queued through one shard's checker is visible to the delivering
// shard's checker, duplicate IDs are flagged wherever they enter, and
// delivery counts accumulate in the shared record.
func TestSharedMsgRegistry(t *testing.T) {
	c1, c2, _, _ := shardPair(t)
	reg := NewMsgRegistry()
	c1.ShareMessages(reg)
	c2.ShareMessages(reg)

	key := msgKey{node: 3, port: 1000, id: 42}
	if dup := c1.putMsg(key, &msgRec{size: 100}); dup {
		t.Fatal("first registration reported duplicate")
	}
	if dup := c2.putMsg(key, &msgRec{size: 100}); !dup {
		t.Fatal("cross-shard duplicate not detected")
	}
	rec, n := c2.takeDelivery(key)
	if rec == nil || n != 1 || rec.size != 100 {
		t.Fatalf("takeDelivery = (%v, %d), want the shared record and count 1", rec, n)
	}
	if _, n := c1.takeDelivery(key); n != 2 {
		t.Fatalf("second delivery count %d, want 2", n)
	}
	if rec, _ := c1.takeDelivery(msgKey{node: 9, port: 9, id: 9}); rec != nil {
		t.Fatal("unknown key returned a record")
	}

	// Unshared checkers keep per-checker registries: the same key on a
	// fresh checker is not a duplicate.
	c3, _, _, _ := shardPair(t)
	if dup := c3.putMsg(key, &msgRec{size: 1}); dup {
		t.Fatal("unshared checker saw the shared registry")
	}
}
