package check

import (
	"strings"
	"testing"
	"time"

	"mtp/internal/cc"
	"mtp/internal/core"
	"mtp/internal/offload"
	"mtp/internal/sim"
	"mtp/internal/simhost"
	"mtp/internal/simnet"
)

// star builds a checker-observed single-switch topology with n hosts.
func star(seed int64, n int) (*sim.Engine, *simnet.Network, *Checker, *simnet.Switch, []*simnet.Host) {
	eng := sim.NewEngine(seed)
	net := simnet.NewNetwork(eng)
	chk := New(eng, net)
	sw := simnet.NewSwitch(net, nil)
	lc := simnet.LinkConfig{Rate: 10e9, Delay: time.Microsecond, QueueCap: 128}
	hosts := make([]*simnet.Host, n)
	for i := range hosts {
		h := simnet.NewHost(net)
		h.SetUplink(net.Connect(sw, lc, "h->sw"))
		sw.AddRoute(h.ID(), net.Connect(h, lc, "sw->h"))
		hosts[i] = h
	}
	return eng, net, chk, sw, hosts
}

// TestCheckerCleanRunNoViolations runs plain multi-packet message traffic
// under the full invariant set and requires a clean bill: every packet
// conserved, every message delivered exactly once with an intact payload.
func TestCheckerCleanRunNoViolations(t *testing.T) {
	eng, net, chk, _, hosts := star(1, 2)

	got := 0
	cfg := func(port uint16) core.Config {
		return core.Config{
			LocalPort: port,
			RTO:       time.Millisecond,
			Observer:  chk,
			CCConfig:  cc.Config{LineRate: 10e9},
		}
	}
	bCfg := cfg(1)
	bCfg.OnMessage = func(m *core.InMessage) { got++ }
	bh := simhost.AttachMTP(net, hosts[1], bCfg)
	chk.AttachEndpoint(bh.EP, hosts[1].ID())
	ah := simhost.AttachMTP(net, hosts[0], cfg(1))
	chk.AttachEndpoint(ah.EP, hosts[0].ID())

	for i := 0; i < 10; i++ {
		payload := make([]byte, 3000)
		for j := range payload {
			payload[j] = byte(i + j)
		}
		ah.EP.Send(hosts[1].ID(), 1, payload, core.SendOptions{})
	}
	eng.Run(10 * time.Millisecond)

	chk.Finalize()
	if got != 10 {
		t.Fatalf("delivered %d/10 messages", got)
	}
	if err := chk.Err(); err != nil {
		t.Fatalf("clean run violated invariants: %v\n%v", err, chk.Violations())
	}
}

// TestCheckerCleanAggregationAudit runs an in-network aggregation workload —
// workers through a switch-resident aggregator to a parameter server with
// the host-side PSAggregator wired into the offload exactly-once audit — and
// requires zero violations: every contribution recorded at submission is
// credited exactly once by a delivered aggregate.
func TestCheckerCleanAggregationAudit(t *testing.T) {
	eng, net, chk, sw, hosts := star(2, 3)
	chk.EnableOffloadAudit()

	const workers, rounds, dim = 2, 3, 4
	ps := hosts[workers]
	agg := offload.NewAggregator(sw, ps.ID(), workers)
	agg.EmitContributors = true

	psagg := offload.NewPSAggregator(workers)
	psagg.Audit = chk.OffloadRound
	done := 0
	psagg.OnRound = func(round uint64, sum []int64) { done++ }

	psCfg := core.Config{
		LocalPort: 2,
		RTO:       time.Millisecond,
		Observer:  chk,
		CCConfig:  cc.Config{LineRate: 10e9},
		OnMessage: func(m *core.InMessage) {
			from, _ := m.From.(simnet.NodeID)
			psagg.Ingest(from, m.Data)
		},
	}
	psh := simhost.AttachMTP(net, ps, psCfg)
	chk.AttachEndpoint(psh.EP, ps.ID())
	_ = psh

	whs := make([]*simhost.MTPHost, workers)
	for w := 0; w < workers; w++ {
		whs[w] = simhost.AttachMTP(net, hosts[w], core.Config{
			LocalPort: 1,
			RTO:       time.Millisecond,
			Observer:  chk,
			CCConfig:  cc.Config{LineRate: 10e9},
		})
		chk.AttachEndpoint(whs[w].EP, hosts[w].ID())
	}
	for round := 1; round <= rounds; round++ {
		for w := 0; w < workers; w++ {
			w, round := w, round
			eng.Schedule(time.Duration(round*100+w*7)*time.Microsecond, func() {
				vec := make([]int64, dim)
				for i := range vec {
					vec[i] = int64(round*100 + w*10 + i)
				}
				whs[w].EP.Send(ps.ID(), 2, offload.EncodeGradient(uint64(round), vec), core.SendOptions{})
			})
		}
	}
	eng.Run(10 * time.Millisecond)

	chk.Finalize()
	if done != rounds {
		t.Fatalf("completed %d/%d rounds", done, rounds)
	}
	if err := chk.Err(); err != nil {
		t.Fatalf("aggregation run violated invariants: %v\n%v", err, chk.Violations())
	}
}

// TestOffloadAuditFlagsMiscounting drives OffloadRound and the submission
// recorder directly with every defect class the audit exists to catch:
// double-crediting, crediting a node that never contributed, a wrong
// aggregate sum, a length mismatch, a duplicate submission, and a
// contribution silently lost (never credited by Finalize).
func TestOffloadAuditFlagsMiscounting(t *testing.T) {
	eng := sim.NewEngine(3)
	net := simnet.NewNetwork(eng)
	chk := New(eng, net)
	chk.EnableOffloadAudit()
	if err := chk.Err(); err != nil {
		t.Fatalf("fresh checker reports violations: %v", err)
	}

	// A correct round is clean.
	chk.offContrib[1] = map[simnet.NodeID][]int64{3: {1, 2}, 4: {10, 20}}
	chk.OffloadRound(1, []simnet.NodeID{3, 4}, []int64{11, 22})
	if chk.Count() != 0 {
		t.Fatalf("clean round flagged: %v", chk.Violations())
	}

	chk.OffloadRound(1, []simnet.NodeID{3}, []int64{1, 2}) // counted twice
	chk.OffloadRound(2, []simnet.NodeID{9}, []int64{0})    // never contributed
	chk.offContrib[3] = map[simnet.NodeID][]int64{5: {5}}
	chk.OffloadRound(3, []simnet.NodeID{5}, []int64{6}) // wrong sum
	chk.offContrib[4] = map[simnet.NodeID][]int64{6: {1}}
	chk.OffloadRound(4, []simnet.NodeID{6}, []int64{1, 2}) // length mismatch
	chk.recordContribution(7, offload.EncodeGradient(5, []int64{1}))
	chk.recordContribution(7, offload.EncodeGradient(5, []int64{1})) // duplicate submission
	chk.offContrib[6] = map[simnet.NodeID][]int64{8: {9}}
	chk.Finalize() // rounds 5 and 6 hold contributions never credited

	const want = 7 // 5 direct + 2 never-counted (nodes 7 and 8)
	if chk.Count() != want {
		t.Fatalf("got %d violations, want %d:\n%v", chk.Count(), want, chk.Violations())
	}
	for _, v := range chk.Violations() {
		if v.Rule != "offload" {
			t.Errorf("violation filed under rule %q, want \"offload\": %s", v.Rule, v)
		}
		if !strings.Contains(v.String(), "[offload]") {
			t.Errorf("rendered violation missing rule tag: %s", v)
		}
	}
	if chk.Err() == nil {
		t.Error("Err() nil despite recorded violations")
	}
}
