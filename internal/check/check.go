// Package check is the protocol invariant harness: a Checker observes every
// packet event in a simulated network (via the simnet Observer hooks) and
// every protocol event in attached MTP endpoints (via the core Observer
// hooks) and asserts protocol-wide properties on each step:
//
//   - packet conservation: every enqueued packet is delivered, dropped, or
//     faulted — never duplicated (outside an injected duplication fault) and
//     never silently lost;
//   - exactly-once message delivery with intact payload (size and CRC
//     cross-checked against the submitted message);
//   - congestion window and rate within the configured bounds for every
//     (pathlet, traffic class);
//   - queue occupancy never exceeding capacity, with ECN marks applied
//     exactly when the enqueue-time queue length crosses the threshold;
//   - a monotone virtual clock with stable (FIFO-among-equal-timestamps)
//     event ordering;
//   - failover sanity: switches never forward onto an excluded pathlet while
//     alternatives remain, and dead pathlets are readmitted only on feedback
//     that proves them alive;
//   - offload exactly-once (opt-in via EnableOffloadAudit): every worker
//     gradient contribution is counted exactly once in some delivered
//     aggregate — in-network or host-side fallback — never dropped and never
//     double-counted across the in-network/host boundary.
//
// Violations are recorded, not panicked, so a scenario runner can shrink a
// failing configuration to a minimal seed (internal/scenario).
package check

import (
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"mtp/internal/core"
	"mtp/internal/offload"
	"mtp/internal/pathlet"
	"mtp/internal/sim"
	"mtp/internal/simnet"
	"mtp/internal/wire"
)

// Violation is one invariant failure.
type Violation struct {
	// At is the virtual time the violation was detected.
	At time.Duration
	// Rule names the violated invariant family (e.g. "conservation",
	// "delivery", "cc-bounds", "queue", "ecn", "clock", "failover",
	// "exclude").
	Rule string
	// Detail describes the specific failure.
	Detail string
}

// String renders the violation on one line.
func (v Violation) String() string {
	return fmt.Sprintf("%12v [%s] %s", v.At, v.Rule, v.Detail)
}

// maxRecorded caps how many violations are kept; past it only the count
// grows (one bug often fires on every subsequent packet).
const maxRecorded = 128

// pktPhase tracks where a packet is in its life.
type pktPhase uint8

const (
	phaseQueued  pktPhase = iota // in a link's egress queue or serializer
	phaseWire                    // serialized, propagating to the link's dst
	phaseNode                    // handed to a node's Receive
	phaseDropped                 // discarded; awaiting release
)

type pktState struct {
	phase pktPhase
	link  *simnet.Link
}

type msgKey struct {
	node simnet.NodeID
	port uint16
	id   uint64
}

type msgRec struct {
	size       int
	crc        uint32
	hasData    bool
	deliveries int
}

type epInfo struct {
	node     simnet.NodeID
	haveNode bool

	// Window/rate bounds derived from the endpoint's cc.Config; boundsKnown
	// is false under a custom CCFactory (bounds are then the factory's
	// business).
	boundsKnown bool
	minWin      float64
	maxWin      float64
	lineRate    float64

	// Failover bookkeeping.
	dead map[wire.PathTC]bool
	// feedbackFrom is the pathlet whose feedback is being processed right
	// now; readmissions are legal only for it.
	feedbackFrom    wire.PathTC
	hasFeedbackFrom bool
}

// Checker is one invariant-checking session over one engine + network.
// Attach it before the simulation runs, run the simulation, then call
// Finalize. The zero value is not usable; use New.
type Checker struct {
	eng *sim.Engine
	net *simnet.Network

	violations []Violation
	total      int

	pkts map[*simnet.Packet]pktState
	msgs map[msgKey]*msgRec
	eps  map[*core.Endpoint]*epInfo

	// shared, when non-nil, replaces msgs with a registry spanning several
	// checkers — one per shard of a partitioned run — so the exactly-once
	// delivery invariant survives a message being queued in one shard and
	// delivered in another (see MsgRegistry).
	shared *MsgRegistry

	// Offload exactly-once audit (EnableOffloadAudit).
	offloadAudit bool
	offContrib   map[uint64]map[simnet.NodeID][]int64
	offCredited  map[uint64]map[simnet.NodeID]bool

	stepped bool
	lastAt  time.Duration
	lastPri uint64
	lastSeq uint64
}

// MsgRegistry is a message send/delivery ledger shared by the per-shard
// checkers of one partitioned run (internal/shard). A message queued at an
// endpoint in one shard is usually delivered at an endpoint in another; with
// per-checker ledgers that delivery would flag "delivered but never sent".
// The registry is mutex-protected because shard engines run on their own
// goroutines; the shard barrier guarantees a queue event is exchanged (and so
// happens-before) the matching delivery, which is at least one lookahead
// later in virtual time.
type MsgRegistry struct {
	mu   sync.Mutex
	msgs map[msgKey]*msgRec
}

// NewMsgRegistry returns an empty shared message ledger.
func NewMsgRegistry() *MsgRegistry {
	return &MsgRegistry{msgs: make(map[msgKey]*msgRec)}
}

// ShareMessages redirects this checker's message ledger to reg. Call it on
// every shard's checker before the simulation runs.
func (c *Checker) ShareMessages(reg *MsgRegistry) { c.shared = reg }

// RecordSend registers a message queued at a real-network sender — the
// socket-backed counterpart of the Observer's MessageQueued hook, for tests
// that run the endpoint over internal/udpnet instead of the simulator. node
// is any stable per-process identity the test assigns. It returns an error
// when (node, srcPort, msgID) was already used.
func (r *MsgRegistry) RecordSend(node simnet.NodeID, srcPort uint16, msgID uint64, data []byte) error {
	key := msgKey{node: node, port: srcPort, id: msgID}
	rec := &msgRec{size: len(data)}
	if data != nil {
		rec.hasData = true
		rec.crc = crc32.ChecksumIEEE(data)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.msgs[key]; dup {
		return fmt.Errorf("check: node %d reused message ID %d", node, msgID)
	}
	r.msgs[key] = rec
	return nil
}

// RecordDelivery validates one real-network delivery against the ledger:
// the message must have been recorded with RecordSend, not delivered
// before, and carry the same size and payload CRC — the exactly-once
// delivery invariant, enforced across processes and real sockets.
func (r *MsgRegistry) RecordDelivery(node simnet.NodeID, srcPort uint16, msgID uint64, data []byte) error {
	key := msgKey{node: node, port: srcPort, id: msgID}
	r.mu.Lock()
	rec := r.msgs[key]
	if rec != nil {
		rec.deliveries++
	}
	r.mu.Unlock()
	switch {
	case rec == nil:
		return fmt.Errorf("check: message %d from node %d port %d delivered but never sent", msgID, node, srcPort)
	case rec.deliveries > 1:
		return fmt.Errorf("check: message %d from node %d delivered %d times", msgID, node, rec.deliveries)
	case len(data) != rec.size:
		return fmt.Errorf("check: message %d from node %d delivered %d bytes, sent %d", msgID, node, len(data), rec.size)
	case rec.hasData && crc32.ChecksumIEEE(data) != rec.crc:
		return fmt.Errorf("check: message %d from node %d payload CRC mismatch", msgID, node)
	}
	return nil
}

// Undelivered counts recorded sends that have never been delivered — zero
// once a soak has fully drained.
func (r *MsgRegistry) Undelivered() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, rec := range r.msgs {
		if rec.deliveries == 0 {
			n++
		}
	}
	return n
}

// UndeliveredFor counts recorded sends from one node that have never been
// delivered. Restart soaks use it to reconcile per incarnation: sends from a
// crashed incarnation may legitimately stay undelivered, while every send
// from a surviving incarnation must drain to zero.
func (r *MsgRegistry) UndeliveredFor(node simnet.NodeID) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for key, rec := range r.msgs {
		if key.node == node && rec.deliveries == 0 {
			n++
		}
	}
	return n
}

// putMsg records a queued message, reporting whether the key was already
// taken (a reused message ID).
func (c *Checker) putMsg(key msgKey, rec *msgRec) (dup bool) {
	if c.shared != nil {
		c.shared.mu.Lock()
		defer c.shared.mu.Unlock()
		if _, dup := c.shared.msgs[key]; dup {
			return true
		}
		c.shared.msgs[key] = rec
		return false
	}
	if _, dup := c.msgs[key]; dup {
		return true
	}
	c.msgs[key] = rec
	return false
}

// takeDelivery looks up a delivered message's send record and bumps its
// delivery count, returning the record (nil if never sent) and the new count.
// The record's size/crc fields are written once at queue time and immutable
// after, so the caller may read them outside the registry lock.
func (c *Checker) takeDelivery(key msgKey) (*msgRec, int) {
	if c.shared != nil {
		c.shared.mu.Lock()
		defer c.shared.mu.Unlock()
		rec := c.shared.msgs[key]
		if rec == nil {
			return nil, 0
		}
		rec.deliveries++
		return rec, rec.deliveries
	}
	rec := c.msgs[key]
	if rec == nil {
		return nil, 0
	}
	rec.deliveries++
	return rec, rec.deliveries
}

// New builds a checker and installs it as the network's observer and the
// engine's step hook. Endpoint-level invariants additionally require
// core.Config.Observer to point at the checker and AttachEndpoint to be
// called per endpoint.
func New(eng *sim.Engine, net *simnet.Network) *Checker {
	c := &Checker{
		eng:  eng,
		net:  net,
		pkts: make(map[*simnet.Packet]pktState),
		msgs: make(map[msgKey]*msgRec),
		eps:  make(map[*core.Endpoint]*epInfo),
	}
	net.SetObserver(c)
	eng.SetStepHook(c.step)
	return c
}

// AttachEndpoint registers an endpoint and its network address, enabling the
// delivery and congestion-bound invariants for it. Call it right after the
// endpoint is built, before any message is submitted.
func (c *Checker) AttachEndpoint(ep *core.Endpoint, node simnet.NodeID) {
	info := c.info(ep)
	info.node = node
	info.haveNode = true

	cfg := ep.Config()
	if cfg.CCFactory == nil {
		ccCfg := cfg.CCConfig
		ccCfg.MSS = cfg.MSS
		norm := ccCfg.Normalized()
		info.boundsKnown = true
		info.minWin = norm.MinWindow
		info.maxWin = norm.MaxWindow
		info.lineRate = norm.LineRate
	}
}

func (c *Checker) info(ep *core.Endpoint) *epInfo {
	info := c.eps[ep]
	if info == nil {
		info = &epInfo{dead: make(map[wire.PathTC]bool)}
		c.eps[ep] = info
	}
	return info
}

// Violations returns the violations recorded so far (capped; Count has the
// true total).
func (c *Checker) Violations() []Violation { return c.violations }

// Count returns the total number of violations detected, including ones
// past the recording cap.
func (c *Checker) Count() int { return c.total }

// Err returns nil when no invariant was violated, otherwise an error
// summarizing the first violation and the total count.
func (c *Checker) Err() error {
	if c.total == 0 {
		return nil
	}
	return fmt.Errorf("check: %d invariant violation(s), first: %s", c.total, c.violations[0])
}

// EnableOffloadAudit turns on the offload exactly-once invariant: the
// checker records every queued message whose payload parses as a worker
// gradient (offload.EncodeGradient), and the application reports each
// completed aggregation round via OffloadRound (the PSAggregator.Audit
// callback has the matching signature). Finalize then flags contributions
// that were never counted. Opt-in because gradient detection is structural —
// enable it only in setups where the traffic is aggregation traffic.
func (c *Checker) EnableOffloadAudit() {
	c.offloadAudit = true
	c.offContrib = make(map[uint64]map[simnet.NodeID][]int64)
	c.offCredited = make(map[uint64]map[simnet.NodeID]bool)
}

// OffloadRound verifies one delivered aggregate: every credited worker must
// have submitted a contribution for the round, none may have been credited
// before (in-network or fallback), and the sum must equal the distinct
// workers' submitted vectors added exactly once each.
func (c *Checker) OffloadRound(round uint64, workers []simnet.NodeID, sum []int64) {
	if !c.offloadAudit {
		return
	}
	credited := c.offCredited[round]
	if credited == nil {
		credited = make(map[simnet.NodeID]bool)
		c.offCredited[round] = credited
	}
	var want []int64
	for _, w := range workers {
		if credited[w] {
			c.violate("offload", "round %d contribution from node %d counted twice", round, w)
			continue
		}
		credited[w] = true
		vec := c.offContrib[round][w]
		if vec == nil {
			c.violate("offload", "round %d credits node %d, which never contributed", round, w)
			continue
		}
		if want == nil {
			want = make([]int64, len(vec))
		}
		for i, v := range vec {
			if i < len(want) {
				want[i] += v
			}
		}
	}
	if want == nil {
		return
	}
	if len(sum) != len(want) {
		c.violate("offload", "round %d aggregate has %d elements, contributions have %d", round, len(sum), len(want))
		return
	}
	for i := range want {
		if sum[i] != want[i] {
			c.violate("offload", "round %d aggregate[%d] = %d, expected %d from %d distinct contributions", round, i, sum[i], want[i], len(workers))
			return
		}
	}
}

// Finalize runs the end-of-simulation conservation audit and returns all
// recorded violations. Packets still queued or on the wire are legal (the
// horizon cut them mid-flight); packets a node consumed without releasing or
// forwarding are leaks. With the offload audit enabled, contributions never
// counted in any delivered aggregate are losses.
func (c *Checker) Finalize() []Violation {
	for pkt, st := range c.pkts {
		switch st.phase {
		case phaseNode:
			c.violate("conservation", "packet %p (src %d dst %d) retained by a node: neither forwarded, delivered, nor dropped", pkt, pkt.Src, pkt.Dst)
		case phaseDropped:
			c.violate("conservation", "packet %p (src %d dst %d) dropped but never released", pkt, pkt.Src, pkt.Dst)
		}
	}
	if c.offloadAudit {
		for round, byWorker := range c.offContrib {
			for w := range byWorker {
				if !c.offCredited[round][w] {
					c.violate("offload", "round %d contribution from node %d never counted in any delivered aggregate", round, w)
				}
			}
		}
	}
	return c.violations
}

func (c *Checker) violate(rule, format string, args ...any) {
	c.total++
	if len(c.violations) >= maxRecorded {
		return
	}
	c.violations = append(c.violations, Violation{
		At:     c.eng.Now(),
		Rule:   rule,
		Detail: fmt.Sprintf(format, args...),
	})
}

// --- sim.Engine step hook: monotone clock, stable event ordering ---

func (c *Checker) step(at time.Duration, pri, seq uint64) {
	if c.stepped {
		if at < c.lastAt {
			c.violate("clock", "virtual clock moved backwards: %v after %v", at, c.lastAt)
		} else if at == c.lastAt && pri == c.lastPri && seq <= c.lastSeq {
			// Among equal timestamps, priority may legally move backwards
			// (an executing high-priority event can schedule a zero-delay
			// pri-0 follow-up), but within one (at, pri) class scheduling
			// order must be FIFO.
			c.violate("clock", "event ordering unstable at %v: pri %d seq %d fired after seq %d", at, pri, seq, c.lastSeq)
		}
	}
	c.stepped = true
	c.lastAt = at
	c.lastPri = pri
	c.lastSeq = seq
}

// --- simnet.Observer: conservation, queue occupancy, ECN, exclude audit ---

// PacketEnqueued implements simnet.Observer.
func (c *Checker) PacketEnqueued(l *simnet.Link, pkt *simnet.Packet, qi, qlenBefore int, ecnMarked bool) {
	if st, ok := c.pkts[pkt]; ok && st.phase != phaseNode {
		c.violate("conservation", "packet %p enqueued on %s while already %s", pkt, l.Name(), phaseName(st.phase))
	}
	c.pkts[pkt] = pktState{phase: phaseQueued, link: l}

	cfg := l.Config()
	if cfg.PauseThreshold == 0 {
		limit := cfg.QueueCap
		if cfg.Trim {
			// Trimmed headers get 4x dedicated headroom beyond the payload
			// queue (see Link.enqueue).
			limit = cfg.QueueCap * 5
		}
		if qlenBefore >= limit {
			c.violate("queue", "link %s queue %d held %d packets at enqueue, capacity %d", l.Name(), qi, qlenBefore, limit)
		}
	}
	if k := cfg.ECNThreshold; k > 0 {
		if want := qlenBefore >= k; ecnMarked != want {
			c.violate("ecn", "link %s queue length %d vs threshold %d: marked=%v", l.Name(), qlenBefore, k, ecnMarked)
		}
	} else if ecnMarked {
		c.violate("ecn", "link %s marked ECN with marking disabled", l.Name())
	}
}

// PacketDropped implements simnet.Observer.
func (c *Checker) PacketDropped(l *simnet.Link, pkt *simnet.Packet, reason simnet.DropReason) {
	if st, ok := c.pkts[pkt]; ok && st.phase == phaseWire {
		c.violate("conservation", "packet %p dropped (%s) while on the wire of %s", pkt, reason, st.link.Name())
	}
	c.pkts[pkt] = pktState{phase: phaseDropped, link: l}
}

// PacketTrimmed implements simnet.Observer: trimming mutates, not moves.
func (c *Checker) PacketTrimmed(*simnet.Link, *simnet.Packet) {}

// PacketDuplicated implements simnet.Observer.
func (c *Checker) PacketDuplicated(l *simnet.Link, pkt, dup *simnet.Packet) {
	if _, ok := c.pkts[dup]; ok {
		c.violate("conservation", "duplicate packet %p on %s aliases a live packet", dup, l.Name())
	}
}

// PacketTxDone implements simnet.Observer.
func (c *Checker) PacketTxDone(l *simnet.Link, pkt *simnet.Packet) {
	st, ok := c.pkts[pkt]
	if !ok || st.phase != phaseQueued || st.link != l {
		c.violate("conservation", "packet %p serialized by %s without being queued there", pkt, l.Name())
	}
	c.pkts[pkt] = pktState{phase: phaseWire, link: l}
}

// PacketDelivered implements simnet.Observer.
func (c *Checker) PacketDelivered(l *simnet.Link, pkt *simnet.Packet) {
	st, ok := c.pkts[pkt]
	if !ok || st.phase != phaseWire || st.link != l {
		c.violate("conservation", "packet %p delivered by %s without transiting its wire", pkt, l.Name())
	}
	c.pkts[pkt] = pktState{phase: phaseNode, link: l}
}

// SwitchDropped implements simnet.Observer.
func (c *Checker) SwitchDropped(sw *simnet.Switch, pkt *simnet.Packet) {
	c.pkts[pkt] = pktState{phase: phaseDropped}
}

// PacketReleased implements simnet.Observer.
func (c *Checker) PacketReleased(pkt *simnet.Packet) {
	if st, ok := c.pkts[pkt]; ok {
		if st.phase == phaseQueued || st.phase == phaseWire {
			c.violate("conservation", "packet %p released while %s on %s: silent loss", pkt, phaseName(st.phase), st.link.Name())
		}
		delete(c.pkts, pkt)
	}
}

// PacketShardExported implements simnet.ShardAccountant: the packet crossed
// a shard-boundary wire and now belongs to the receiving shard's checker. It
// must have been transiting the cut link's wire; its local ledger entry is
// closed so the sender-side release doesn't read as silent loss.
func (c *Checker) PacketShardExported(l *simnet.Link, pkt *simnet.Packet) {
	st, ok := c.pkts[pkt]
	if !ok || st.phase != phaseWire || st.link != l {
		c.violate("conservation", "packet %p exported by %s without transiting its wire", pkt, l.Name())
	}
	delete(c.pkts, pkt)
}

// PacketShardImported implements simnet.ShardAccountant: a copy of a packet
// exported by a neighbouring shard is about to be delivered off this shard's
// mirror of the cut link. Seeding it in the wire phase makes the subsequent
// PacketDelivered/Receive/release sequence indistinguishable from a local
// delivery.
func (c *Checker) PacketShardImported(l *simnet.Link, pkt *simnet.Packet) {
	if st, ok := c.pkts[pkt]; ok {
		c.violate("conservation", "imported packet %p aliases a live packet (%s)", pkt, phaseName(st.phase))
	}
	c.pkts[pkt] = pktState{phase: phaseWire, link: l}
}

// ForwardChosen implements simnet.Observer: audits the egress choice against
// the header's path-exclude list. Choosing an excluded pathlet is legal only
// when every candidate is excluded (the documented fallback).
func (c *Checker) ForwardChosen(sw *simnet.Switch, pkt *simnet.Packet, chosen *simnet.Link, candidates []*simnet.Link) {
	hdr := pkt.Hdr
	if hdr == nil || len(hdr.PathExclude) == 0 {
		return
	}
	cp := chosen.Config().Pathlet
	if cp == nil || !hdr.Excludes(wire.PathTC{PathID: *cp, TC: hdr.TC}) {
		return
	}
	for _, cand := range candidates {
		p := cand.Config().Pathlet
		if p == nil || !hdr.Excludes(wire.PathTC{PathID: *p, TC: hdr.TC}) {
			c.violate("exclude", "switch %d forwarded msg %d pkt %d onto excluded pathlet %d while pathlet alternatives remained",
				sw.ID(), hdr.MsgID, hdr.PktNum, *cp)
			return
		}
	}
}

func phaseName(p pktPhase) string {
	switch p {
	case phaseQueued:
		return "queued"
	case phaseWire:
		return "on the wire"
	case phaseNode:
		return "at a node"
	case phaseDropped:
		return "dropped"
	default:
		return "unknown"
	}
}

// --- core.Observer: delivery, cc bounds, failover sanity ---

// MessageQueued implements core.Observer.
func (c *Checker) MessageQueued(e *core.Endpoint, m *core.OutMessage) {
	info := c.info(e)
	if !info.haveNode {
		return
	}
	key := msgKey{node: info.node, port: e.Config().LocalPort, id: m.ID}
	rec := &msgRec{size: m.Size}
	if data := m.Data(); data != nil {
		rec.hasData = true
		rec.crc = crc32.ChecksumIEEE(data)
		if c.offloadAudit {
			c.recordContribution(info.node, data)
		}
	}
	if c.putMsg(key, rec) {
		c.violate("delivery", "endpoint %d reused message ID %d", info.node, m.ID)
	}
}

// recordContribution notes a worker gradient submission for the offload
// exactly-once audit. Aggregate payloads (device- or fallback-format) are
// structurally distinct from gradients, so a false positive would require
// non-aggregation traffic — which the audit's opt-in contract excludes.
func (c *Checker) recordContribution(node simnet.NodeID, data []byte) {
	if _, _, _, isAgg := offload.DecodeAggregate(data); isAgg {
		return
	}
	round, vec, ok := offload.DecodeGradient(data)
	if !ok {
		return
	}
	byWorker := c.offContrib[round]
	if byWorker == nil {
		byWorker = make(map[simnet.NodeID][]int64)
		c.offContrib[round] = byWorker
	}
	if _, dup := byWorker[node]; dup {
		c.violate("offload", "node %d submitted two contributions for round %d", node, round)
		return
	}
	byWorker[node] = vec
}

// MessageDelivered implements core.Observer.
func (c *Checker) MessageDelivered(e *core.Endpoint, m *core.InMessage) {
	from, ok := m.From.(simnet.NodeID)
	if !ok {
		return
	}
	if m.MsgID >= offload.SpoofMsgIDBase {
		// Device-originated message (cache response, aggregated gradient):
		// no endpoint queued it, so the sent-message cross-checks do not
		// apply. The offload audit covers aggregate correctness instead.
		return
	}
	key := msgKey{node: from, port: m.SrcPort, id: m.MsgID}
	rec, deliveries := c.takeDelivery(key)
	if rec == nil {
		c.violate("delivery", "message %d from node %d port %d delivered but never sent", m.MsgID, from, m.SrcPort)
		return
	}
	if deliveries > 1 {
		c.violate("delivery", "message %d from node %d delivered %d times", m.MsgID, from, deliveries)
	}
	if m.Size != rec.size {
		c.violate("delivery", "message %d from node %d delivered %d bytes, sent %d", m.MsgID, from, m.Size, rec.size)
	}
	if rec.hasData {
		if m.Data == nil {
			c.violate("delivery", "message %d from node %d delivered without its payload", m.MsgID, from)
		} else if crc := crc32.ChecksumIEEE(m.Data); crc != rec.crc {
			c.violate("delivery", "message %d from node %d payload CRC %08x, sent %08x", m.MsgID, from, crc, rec.crc)
		}
	}
}

// PathletUpdated implements core.Observer: window/rate bound audit.
func (c *Checker) PathletUpdated(e *core.Endpoint, st *pathlet.State) {
	info := c.info(e)
	if !info.boundsKnown {
		return
	}
	w := st.Algo.Window()
	if w < info.minWin {
		c.violate("cc-bounds", "pathlet %d/%d window %.0f below floor %.0f", st.Path.PathID, st.Path.TC, w, info.minWin)
	}
	if info.maxWin > 0 && w > info.maxWin {
		c.violate("cc-bounds", "pathlet %d/%d window %.0f above cap %.0f", st.Path.PathID, st.Path.TC, w, info.maxWin)
	}
	if rate, rateBased := st.Algo.Rate(); rateBased {
		if rate <= 0 {
			c.violate("cc-bounds", "pathlet %d/%d rate %.0f not positive", st.Path.PathID, st.Path.TC, rate)
		}
		if info.lineRate > 0 && rate > info.lineRate {
			c.violate("cc-bounds", "pathlet %d/%d rate %.0f above line rate %.0f", st.Path.PathID, st.Path.TC, rate, info.lineRate)
		}
	}
	if st.Inflight < 0 {
		c.violate("cc-bounds", "pathlet %d/%d negative inflight %d", st.Path.PathID, st.Path.TC, st.Inflight)
	}
}

// PathletFailed implements core.Observer.
func (c *Checker) PathletFailed(e *core.Endpoint, p wire.PathTC) {
	c.info(e).dead[p] = true
}

// FeedbackReceived implements core.Observer.
func (c *Checker) FeedbackReceived(e *core.Endpoint, p wire.PathTC) {
	info := c.info(e)
	info.feedbackFrom = p
	info.hasFeedbackFrom = true
}

// PathletReadmitted implements core.Observer: a dead pathlet may only come
// back when feedback from that very pathlet is being processed — the probe
// (or any rerouted packet) made it across and back.
func (c *Checker) PathletReadmitted(e *core.Endpoint, p wire.PathTC) {
	info := c.info(e)
	if !info.dead[p] {
		c.violate("failover", "pathlet %d/%d readmitted but was never declared dead", p.PathID, p.TC)
	}
	delete(info.dead, p)
	if !info.hasFeedbackFrom || info.feedbackFrom != p {
		c.violate("failover", "pathlet %d/%d readmitted without feedback from it", p.PathID, p.TC)
	}
}

// ProbeSent implements core.Observer.
func (c *Checker) ProbeSent(e *core.Endpoint, p wire.PathTC) {
	if !c.info(e).dead[p] {
		c.violate("failover", "probe sent toward pathlet %d/%d, which is not dead", p.PathID, p.TC)
	}
}
