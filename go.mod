module mtp

go 1.22
