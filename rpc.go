package mtp

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// The paper's first messaging mode is RPC: every request is one MTP message
// and every response is another, so in-network caches can answer requests,
// L7 balancers can steer them, and congestion control is shared across all
// of a client's calls. Call/Serve implement request/response correlation on
// top of Node messages.

// rpcFrameLen prefixes each RPC payload: magic (4) + correlation id (8) +
// flags (1). The magic keeps RPC frames from colliding with arbitrary user
// payloads sharing a node.
const rpcFrameLen = 4 + 8 + 1

// rpcMagic spells "MRPC".
const rpcMagic = 0x4D525043

const (
	rpcFlagRequest  = 0x01
	rpcFlagResponse = 0x02
	rpcFlagError    = 0x04
)

// ErrRPCRemote wraps an error string returned by the remote handler.
var ErrRPCRemote = errors.New("mtp: remote handler error")

// rpcState tracks outstanding calls on a node.
type rpcState struct {
	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan rpcResult
}

type rpcResult struct {
	data []byte
	err  error
}

// Handler serves one RPC request and returns the response payload. Errors
// are transported back to the caller as ErrRPCRemote.
type Handler func(from string, req []byte) ([]byte, error)

// ServeRPC installs an RPC handler on port: every request message arriving
// there is answered with a correlated response message. Call ServeRPC before
// traffic arrives; it composes with Config.OnMessage, which keeps receiving
// non-RPC messages on other ports.
func (n *Node) ServeRPC(port uint16, h Handler) error {
	if h == nil {
		return errors.New("mtp: nil RPC handler")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.rpcHandlers == nil {
		n.rpcHandlers = make(map[uint16]Handler)
	}
	if _, dup := n.rpcHandlers[port]; dup {
		return fmt.Errorf("mtp: RPC handler already bound to port %d", port)
	}
	n.rpcHandlers[port] = h
	return nil
}

// Call sends req to the RPC server at addr/port and waits for the response
// or ctx cancellation. Calls are independent MTP messages: concurrent calls
// share pathlet congestion state but nothing else.
func (n *Node) Call(ctx context.Context, addr string, port uint16, req []byte) ([]byte, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, errors.New("mtp: node closed")
	}
	if n.rpc.pending == nil {
		n.rpc.pending = make(map[uint64]chan rpcResult)
	}
	n.rpc.nextID++
	id := n.rpc.nextID
	ch := make(chan rpcResult, 1)
	n.rpc.pending[id] = ch
	n.mu.Unlock()

	payload := make([]byte, rpcFrameLen+len(req))
	binary.BigEndian.PutUint32(payload, rpcMagic)
	binary.BigEndian.PutUint64(payload[4:], id)
	payload[12] = rpcFlagRequest
	copy(payload[rpcFrameLen:], req)

	if _, err := n.Send(addr, port, payload); err != nil {
		n.mu.Lock()
		delete(n.rpc.pending, id)
		n.mu.Unlock()
		return nil, err
	}
	select {
	case r := <-ch:
		return r.data, r.err
	case <-ctx.Done():
		n.mu.Lock()
		delete(n.rpc.pending, id)
		n.mu.Unlock()
		return nil, ctx.Err()
	}
}

// handleRPC intercepts RPC-framed messages. Returns true if consumed.
// Called WITHOUT the node lock (from the drain path).
func (n *Node) handleRPC(m Message) bool {
	if len(m.Data) < rpcFrameLen || binary.BigEndian.Uint32(m.Data) != rpcMagic {
		return false
	}
	id := binary.BigEndian.Uint64(m.Data[4:])
	flags := m.Data[12]
	body := m.Data[rpcFrameLen:]
	switch {
	case flags&rpcFlagRequest != 0:
		n.mu.Lock()
		h := n.rpcHandlers[m.DstPort]
		n.mu.Unlock()
		if h == nil {
			return false
		}
		resp, err := h(m.From.String(), body)
		out := make([]byte, rpcFrameLen, rpcFrameLen+len(resp))
		binary.BigEndian.PutUint32(out, rpcMagic)
		binary.BigEndian.PutUint64(out[4:], id)
		out[12] = rpcFlagResponse
		if err != nil {
			out[12] |= rpcFlagError
			out = append(out, []byte(err.Error())...)
		} else {
			out = append(out, resp...)
		}
		if _, serr := n.Send(m.From.String(), m.SrcPort, out); serr != nil {
			return true // request consumed; response undeliverable
		}
		return true
	case flags&rpcFlagResponse != 0:
		n.mu.Lock()
		ch := n.rpc.pending[id]
		delete(n.rpc.pending, id)
		n.mu.Unlock()
		if ch == nil {
			return true // late or duplicate response
		}
		if flags&rpcFlagError != 0 {
			ch <- rpcResult{err: fmt.Errorf("%w: %s", ErrRPCRemote, body)}
		} else {
			ch <- rpcResult{data: append([]byte(nil), body...)}
		}
		return true
	default:
		return false
	}
}
