// Command mtpping is an MTP echo server and client over UDP: the smallest
// possible real-network deployment of the message transport.
//
// Server:  mtpping -listen 127.0.0.1:9999
// Client:  mtpping -connect 127.0.0.1:9999 -count 5 -size 32768
//
// The client sends messages of the given size and reports per-message
// round-trip times measured at message (not packet) granularity, plus the
// packet-level retransmissions each ping cost. -interval paces the pings;
// -json switches the client to machine-readable output (one JSON object
// per ping, then a summary object).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"os/signal"
	"sync"
	"time"

	"mtp"
)

func main() {
	var (
		listen   = flag.String("listen", "", "run an echo server on this UDP address")
		connect  = flag.String("connect", "", "send pings to this server address")
		count    = flag.Int("count", 5, "number of messages to send")
		size     = flag.Int("size", 1024, "message size in bytes")
		port     = flag.Uint("port", 7, "MTP service port")
		ccAlgo   = flag.String("cc", "dctcp", "congestion control: dctcp, aimd, rcp, swift, dcqcn")
		doTrace  = flag.Bool("trace", false, "dump the protocol event trace at exit (client)")
		interval = flag.Duration("interval", 0, "pause between pings (like ping -i)")
		jsonOut  = flag.Bool("json", false, "emit JSON lines instead of text (client)")
	)
	flag.Parse()

	switch {
	case *listen != "":
		runServer(*listen, uint16(*port), *ccAlgo)
	case *connect != "":
		runClient(*connect, uint16(*port), *ccAlgo, *count, *size, *doTrace, *interval, *jsonOut)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runServer(addr string, port uint16, ccAlgo string) {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	var node *mtp.Node
	node, err = mtp.NewNode(pc, mtp.Config{
		Port: port,
		CC:   ccAlgo,
		OnMessage: func(m mtp.Message) {
			// Echo the message back at the same priority.
			if _, err := node.SendPriority(m.From.String(), m.SrcPort, m.Data, m.Priority); err != nil {
				log.Printf("echo to %s: %v", m.From, err)
			}
		},
	})
	if err != nil {
		log.Fatalf("node: %v", err)
	}
	defer node.Close()
	log.Printf("mtp echo server on %s (port %d)", node.Addr(), port)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Printf("stats: %+v", node.Stats())
}

// pingReport is one ping's -json line.
type pingReport struct {
	Seq   int     `json:"seq"`
	Bytes int     `json:"bytes"`
	RTTus float64 `json:"rtt_us"`
	// Retx is the packet-level retransmission count this ping incurred
	// (delta of the endpoint's PktsRetx across the exchange).
	Retx uint64 `json:"retx"`
}

// pingSummary is the final -json line.
type pingSummary struct {
	Count     int     `json:"count"`
	Bytes     int     `json:"bytes"`
	MinRTTus  float64 `json:"min_rtt_us"`
	AvgRTTus  float64 `json:"avg_rtt_us"`
	MaxRTTus  float64 `json:"max_rtt_us"`
	TotalRetx uint64  `json:"total_retx"`
	PktsSent  uint64  `json:"pkts_sent"`
	// RingFullDrops separates local send-ring drops (NIC-style backpressure)
	// from network loss; StaleEpochDrops and EpochBumps surface peer
	// restarts observed during the run.
	RingFullDrops   uint64 `json:"ring_full_drops"`
	StaleEpochDrops uint64 `json:"stale_epoch_drops"`
	EpochBumps      uint64 `json:"epoch_bumps"`
}

func runClient(addr string, port uint16, ccAlgo string, count, size int, doTrace bool, interval time.Duration, jsonOut bool) {
	pc, err := net.ListenPacket("udp", "0.0.0.0:0")
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	traceEvents := 0
	if doTrace {
		traceEvents = 256
	}
	var mu sync.Mutex
	echoAt := make(map[int]time.Time) // payload tag -> echo time
	echoed := make(chan int, count)
	node, err := mtp.NewNode(pc, mtp.Config{
		Port:        99,
		CC:          ccAlgo,
		TraceEvents: traceEvents,
		OnMessage: func(m mtp.Message) {
			if len(m.Data) < 4 {
				return
			}
			tag := int(m.Data[0])<<8 | int(m.Data[1])
			mu.Lock()
			echoAt[tag] = time.Now()
			mu.Unlock()
			echoed <- tag
		},
	})
	if err != nil {
		log.Fatalf("node: %v", err)
	}
	defer node.Close()

	payload := make([]byte, size)
	rand.New(rand.NewSource(time.Now().UnixNano())).Read(payload)
	enc := json.NewEncoder(os.Stdout)
	var rtts []time.Duration
	retxBase := node.Stats().PktsRetx
	for i := 0; i < count; i++ {
		if i > 0 && interval > 0 {
			time.Sleep(interval)
		}
		payload[0], payload[1] = byte(i>>8), byte(i)
		t0 := time.Now()
		out, err := node.Send(addr, port, payload)
		if err != nil {
			log.Fatalf("send: %v", err)
		}
		select {
		case <-out.Done():
		case <-time.After(10 * time.Second):
			log.Fatalf("message %d not acknowledged", i)
		}
		select {
		case <-echoed:
		case <-time.After(10 * time.Second):
			log.Fatalf("message %d not echoed", i)
		}
		mu.Lock()
		rtt := echoAt[i].Sub(t0)
		mu.Unlock()
		rtts = append(rtts, rtt)
		retxNow := node.Stats().PktsRetx
		retx := retxNow - retxBase
		retxBase = retxNow
		if jsonOut {
			_ = enc.Encode(pingReport{Seq: i, Bytes: size, RTTus: float64(rtt) / float64(time.Microsecond), Retx: retx})
		} else if retx > 0 {
			fmt.Printf("msg %d: %d bytes echoed in %v (%d pkt retransmissions)\n", i, size, rtt, retx)
		} else {
			fmt.Printf("msg %d: %d bytes echoed in %v\n", i, size, rtt)
		}
	}
	var total time.Duration
	min, max := rtts[0], rtts[0]
	for _, r := range rtts {
		total += r
		if r < min {
			min = r
		}
		if r > max {
			max = r
		}
	}
	st := node.Stats()
	if jsonOut {
		us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
		_ = enc.Encode(pingSummary{
			Count: len(rtts), Bytes: size,
			MinRTTus: us(min), AvgRTTus: us(total / time.Duration(len(rtts))), MaxRTTus: us(max),
			TotalRetx: st.PktsRetx, PktsSent: st.PktsSent,
			RingFullDrops: st.RingFullDrops, StaleEpochDrops: st.StaleEpochDrops, EpochBumps: st.EpochBumps,
		})
	} else {
		fmt.Printf("avg message RTT: %v over %d messages (min %v, max %v)\n",
			total/time.Duration(len(rtts)), len(rtts), min, max)
		fmt.Printf("packets: %d sent, %d retransmitted\n", st.PktsSent, st.PktsRetx)
		fmt.Printf("client stats: %+v\n", st)
	}
	if doTrace {
		fmt.Print(node.TraceDump())
	}
}
