// Command mtpping is an MTP echo server and client over UDP: the smallest
// possible real-network deployment of the message transport.
//
// Server:  mtpping -listen 127.0.0.1:9999
// Client:  mtpping -connect 127.0.0.1:9999 -count 5 -size 32768
//
// The client sends messages of the given size and reports per-message
// round-trip times measured at message (not packet) granularity.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"os/signal"
	"sync"
	"time"

	"mtp"
)

func main() {
	var (
		listen  = flag.String("listen", "", "run an echo server on this UDP address")
		connect = flag.String("connect", "", "send pings to this server address")
		count   = flag.Int("count", 5, "number of messages to send")
		size    = flag.Int("size", 1024, "message size in bytes")
		port    = flag.Uint("port", 7, "MTP service port")
		ccAlgo  = flag.String("cc", "dctcp", "congestion control: dctcp, aimd, rcp, swift, dcqcn")
		doTrace = flag.Bool("trace", false, "dump the protocol event trace at exit (client)")
	)
	flag.Parse()

	switch {
	case *listen != "":
		runServer(*listen, uint16(*port), *ccAlgo)
	case *connect != "":
		runClient(*connect, uint16(*port), *ccAlgo, *count, *size, *doTrace)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runServer(addr string, port uint16, ccAlgo string) {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	var node *mtp.Node
	node, err = mtp.NewNode(pc, mtp.Config{
		Port: port,
		CC:   ccAlgo,
		OnMessage: func(m mtp.Message) {
			// Echo the message back at the same priority.
			if _, err := node.SendPriority(m.From.String(), m.SrcPort, m.Data, m.Priority); err != nil {
				log.Printf("echo to %s: %v", m.From, err)
			}
		},
	})
	if err != nil {
		log.Fatalf("node: %v", err)
	}
	defer node.Close()
	log.Printf("mtp echo server on %s (port %d)", node.Addr(), port)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Printf("stats: %+v", node.Stats())
}

func runClient(addr string, port uint16, ccAlgo string, count, size int, doTrace bool) {
	pc, err := net.ListenPacket("udp", "0.0.0.0:0")
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	traceEvents := 0
	if doTrace {
		traceEvents = 256
	}
	var mu sync.Mutex
	echoAt := make(map[int]time.Time) // payload tag -> echo time
	echoed := make(chan int, count)
	node, err := mtp.NewNode(pc, mtp.Config{
		Port:        99,
		CC:          ccAlgo,
		TraceEvents: traceEvents,
		OnMessage: func(m mtp.Message) {
			if len(m.Data) < 4 {
				return
			}
			tag := int(m.Data[0])<<8 | int(m.Data[1])
			mu.Lock()
			echoAt[tag] = time.Now()
			mu.Unlock()
			echoed <- tag
		},
	})
	if err != nil {
		log.Fatalf("node: %v", err)
	}
	defer node.Close()

	payload := make([]byte, size)
	rand.New(rand.NewSource(time.Now().UnixNano())).Read(payload)
	var rtts []time.Duration
	for i := 0; i < count; i++ {
		payload[0], payload[1] = byte(i>>8), byte(i)
		t0 := time.Now()
		out, err := node.Send(addr, port, payload)
		if err != nil {
			log.Fatalf("send: %v", err)
		}
		select {
		case <-out.Done():
		case <-time.After(10 * time.Second):
			log.Fatalf("message %d not acknowledged", i)
		}
		select {
		case <-echoed:
		case <-time.After(10 * time.Second):
			log.Fatalf("message %d not echoed", i)
		}
		mu.Lock()
		rtt := echoAt[i].Sub(t0)
		mu.Unlock()
		rtts = append(rtts, rtt)
		fmt.Printf("msg %d: %d bytes echoed in %v\n", i, size, rtt)
	}
	var total time.Duration
	for _, r := range rtts {
		total += r
	}
	fmt.Printf("avg message RTT: %v over %d messages\n", total/time.Duration(len(rtts)), len(rtts))
	fmt.Printf("client stats: %+v\n", node.Stats())
	if doTrace {
		fmt.Print(node.TraceDump())
	}
}
