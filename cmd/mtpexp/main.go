// Command mtpexp regenerates the paper's evaluation tables and figures on
// the built-in simulator.
//
// Usage:
//
//	mtpexp -exp all            # run everything
//	mtpexp -exp fig5 -samples  # one figure, with the raw 32µs series
//	mtpexp -exp table1 -v      # the feature matrix with per-cell evidence
//
// Each experiment prints the rows/series the paper reports; EXPERIMENTS.md
// records how the shapes compare.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"mtp/internal/exp"
	"mtp/internal/scenario"
)

func main() {
	var (
		which    = flag.String("exp", "all", "experiment: all, fig1, fig2, fig3, fig5, fig6, fig7, failover, offfail, table1, ext, fig5sweep, fig6sweep, ccsweep, scale, scalesweep, scenario")
		duration = flag.Duration("duration", 0, "override simulated duration (fig2/3/5/7)")
		messages = flag.Int("messages", 0, "override message count (fig6) or per-sender messages (scale)")
		maxSize  = flag.Int("maxsize", 0, "override max message size in bytes (fig6)")
		samples  = flag.Bool("samples", false, "dump raw throughput series (fig5)")
		wl       = flag.String("workload", "", "fig6 workload: papermix (default) or websearch")

		topoName = flag.String("topo", "", "scale topology: leafspine (default) or fattree")
		leaves   = flag.Int("leaves", 0, "scale: leaf (ToR) switch count")
		spines   = flag.Int("spines", 0, "scale: spine switch count")
		perLeaf  = flag.Int("hostsperleaf", 0, "scale: hosts per leaf")
		radix    = flag.Int("k", 0, "scale: fat-tree radix (with -topo fattree)")
		pattern  = flag.String("pattern", "", "scale traffic: permutation (default), incast, shuffle")
		msgSize  = flag.Int("msgsize", 0, "scale: message size in bytes")
		rival    = flag.String("baseline", "dctcp", "rival transport for failover/scale/scalesweep: dctcp, mptcp-lia, mptcp-olia, quic")
		rivalRnd = flag.Bool("rival", false, "scenario: sample the rival baseline type per seed instead of always DCTCP")
		verbose  = flag.Bool("v", false, "verbose output (table1 evidence)")
		seed     = flag.Int64("seed", 1, "simulation seed")
		chkOn    = flag.Bool("check", false, "run scale/failover under the protocol invariant harness (internal/check)")
		nScen    = flag.Int("scenarios", 1, "scenario: number of seeds to run, starting at -seed")
		faults   = flag.Int("faults", -1, "scenario: cap the sampled fault count (-1 = unlimited)")
		offOn    = flag.Bool("offload", false, "scenario: place a sampled in-network device (cache or IDS) on the fabric")
		parallel = flag.Int("parallel", 1, "sweep workers: 1 sequential, 0 = all CPUs, N fixed (results are identical regardless); capped so workers x shards <= GOMAXPROCS")
		shards   = flag.Int("shards", 1, "scale/scalesweep: split the simulation across N parallel engines (clamped to pods for fattree, racks for leafspine); results are bit-identical to -shards 1")
		maxbatch = flag.Int("shardbatch", 0, "scale/scalesweep: cap lookahead windows per barrier round (0 = unbounded batching, 1 = legacy one-window rounds); attribution knob, results identical")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof  = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	switch *rival {
	case "dctcp", "mptcp-lia", "mptcp-olia", "quic":
	default:
		fmt.Fprintf(os.Stderr, "unknown -baseline %q (want dctcp, mptcp-lia, mptcp-olia, or quic)\n", *rival)
		os.Exit(2)
	}

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		f, err := os.Create(*memprof)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
			f.Close()
		}()
	}

	run := func(name string) bool { return *which == "all" || *which == name }
	ran := false

	if run("table1") {
		ran = true
		r := exp.RunTable1Workers(*parallel)
		if *verbose {
			fmt.Println(r.Verbose())
		} else {
			fmt.Println(r.String())
		}
	}
	if run("fig1") {
		ran = true
		r := exp.RunFig1(exp.Fig1Config{Seed: *seed})
		fmt.Println(r.String())
	}
	if run("fig2") {
		ran = true
		r := exp.RunFig2(exp.Fig2Config{Duration: *duration, Seed: *seed})
		fmt.Println(r.String())
	}
	if run("fig3") {
		ran = true
		r := exp.RunFig3(exp.Fig3Config{Duration: *duration, Outstanding: 1, Seed: *seed})
		fmt.Println(r.String())
	}
	if run("fig5") {
		ran = true
		r := exp.RunFig5(exp.Fig5Config{Duration: *duration, Seed: *seed})
		fmt.Println(r.String())
		if *samples {
			fmt.Println(r.Samples())
		}
	}
	if *which == "fig5sweep" {
		ran = true
		fmt.Println(exp.SweepString(exp.RunFig5PeriodSweep(*parallel, nil, *duration, *seed)))
	}
	if *which == "ccsweep" {
		ran = true
		fmt.Println(exp.CCSweepString(exp.RunFig5CCSweep(*parallel, nil, *duration, *seed)))
	}
	if run("fig6") {
		ran = true
		d := exp.Fig6Config{Messages: *messages, MaxMsgSize: *maxSize, Seed: *seed, Workload: *wl}
		if *duration > 0 {
			d.Timeout = *duration
		}
		r := exp.RunFig6(d)
		fmt.Println(r.String())
	}
	if *which == "fig6sweep" {
		ran = true
		fmt.Println(exp.LoadSweepString(exp.RunFig6LoadSweep(*parallel, nil, *messages, *maxSize, *seed)))
	}
	if run("failover") {
		ran = true
		fr := exp.FailoverConfig{Seed: *seed, Check: *chkOn, Baseline: *rival}
		if *duration > 0 {
			fr.Duration = *duration
		}
		r := exp.RunFailover(fr)
		fmt.Println(r.String())
		if *samples {
			fmt.Println(r.Samples())
		}
	}
	if run("offfail") {
		ran = true
		oc := exp.OffFailConfig{Seed: *seed, Check: *chkOn}
		if *duration > 0 {
			oc.Duration = *duration
		}
		r := exp.RunOffFail(oc)
		fmt.Println(r.String())
	}
	if run("fig7") {
		ran = true
		r := exp.RunFig7(exp.Fig7Config{Duration: *duration, Seed: *seed})
		fmt.Println(r.String())
	}
	// The at-scale fabric runs are explicit-only (like the sweeps): 128-host
	// fabrics are a step up in runtime from the paper figures.
	scaleCfg := exp.ScaleConfig{
		Topo: *topoName, Leaves: *leaves, Spines: *spines, HostsPerLeaf: *perLeaf,
		K: *radix, Pattern: *pattern, MsgSize: *msgSize, Messages: *messages,
		Seed: *seed, Workers: *parallel, Shards: *shards, MaxBatch: *maxbatch, Check: *chkOn,
		Baseline: *rival,
	}
	if *duration > 0 {
		scaleCfg.Timeout = *duration
	}
	if *which == "scale" {
		ran = true
		r := exp.RunScale(scaleCfg)
		fmt.Println(r.String())
		fmt.Println(r.PerfString())
	}
	if *which == "scalesweep" {
		ran = true
		if *topoName == "fattree" {
			// Radix sweep doubling from 4 up to the -k flag (default ladder
			// when -k is unset).
			var ks []int
			if scaleCfg.K > 0 {
				for k := 4; k <= scaleCfg.K; k *= 2 {
					ks = append(ks, k)
				}
				if len(ks) == 0 || ks[len(ks)-1] != scaleCfg.K {
					ks = append(ks, scaleCfg.K)
				}
			}
			fmt.Println(exp.ScaleKSweepString(exp.RunScaleKSweep(*parallel, ks, scaleCfg)))
		} else {
			fmt.Println(exp.ScaleSweepString(exp.RunScaleHostSweep(*parallel, nil, scaleCfg)))
		}
	}
	// Seeded random scenarios under the invariant harness (internal/scenario):
	// run -scenarios seeds starting at -seed; any violating seed is shrunk to
	// a minimal repro and the exit status is non-zero. The topology/size flags
	// act as caps on the sampled dimensions, so a shrunken repro line replays
	// exactly.
	if *which == "scenario" {
		ran = true
		ov := scenario.Overrides{
			Topo: *topoName, Leaves: *leaves, Spines: *spines, HostsPerLeaf: *perLeaf,
			Messages: *messages, MaxFaults: *faults, Horizon: *duration,
			Offload: *offOn, Rival: *rivalRnd,
		}
		failed := false
		for s := *seed; s < *seed+int64(*nScen); s++ {
			r := scenario.Run(s, ov)
			if r.Count == 0 {
				if *nScen == 1 {
					fmt.Print(r.String())
				} else {
					fmt.Printf("scenario seed=%d: ok (%d/%d delivered, %d events)\n",
						s, r.Delivered, r.Expected, r.Events)
				}
				continue
			}
			failed = true
			min, res := scenario.Shrink(s, ov)
			fmt.Print(res.String())
			fmt.Printf("shrunken repro: %s\n", scenario.ReproLine(s, min))
		}
		if failed {
			os.Exit(1)
		}
	}
	if run("ext") {
		ran = true
		fmt.Println("Extensions (Section 4 design points, measured):")
		fmt.Println(exp.ExtensionsSummary())
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *which)
		flag.Usage()
		os.Exit(2)
	}
	_ = time.Second
}
