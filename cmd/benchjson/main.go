// Command benchjson converts `go test -bench` output into a JSON benchmark
// record. It passes every input line through to stdout unchanged (so it can
// sit at the end of a pipe without hiding the run) and writes a machine-
// readable summary — ns/op, B/op, allocs/op, and every custom metric such as
// the figure goodputs — keyed by benchmark name.
//
//	go test -run XXX -bench . -benchmem . | go run ./cmd/benchjson -o BENCH_sim.json
//
// With -merge, benchmarks already recorded in the output file but absent
// from this run are kept, so partial reruns (a single -bench regex) refine
// the record instead of clobbering it.
//
// With -gate FILE, the new results are additionally compared against the
// baseline record in FILE: for every benchmark present in both, each metric
// named in -gate-metrics (comma-separated) must be at least (1 - -gate-tol)
// of its baseline value, else the exit status is non-zero. This is the CI
// smoke gate against committed BENCH_*.json baselines.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed line.
type Result struct {
	NsPerOp     float64            `json:"ns_op"`
	BytesPerOp  float64            `json:"bytes_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_op,omitempty"`
	Iterations  int64              `json:"iterations"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("o", "BENCH_sim.json", "output JSON file")
	merge := flag.Bool("merge", false, "keep benchmarks already in the output file that this run did not produce")
	gate := flag.String("gate", "", "baseline JSON file to gate against (empty = no gate)")
	gateMetrics := flag.String("gate-metrics", "", "comma-separated metric names the gate checks (higher is better)")
	gateTol := flag.Float64("gate-tol", 0.25, "allowed fractional regression before the gate fails")
	flag.Parse()

	results := make(map[string]*Result)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if r, name := parseLine(line); r != nil {
			results[name] = r
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	gateOK := true
	if *gate != "" {
		gateOK = checkGate(results, *gate, *gateMetrics, *gateTol)
	}
	if *merge {
		if old, err := readRecord(*out); err == nil {
			for name, r := range old {
				if _, fresh := results[name]; !fresh {
					results[name] = r
				}
			}
		}
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), *out)
	if !gateOK {
		os.Exit(1)
	}
}

// readRecord loads a previously written benchmark JSON file.
func readRecord(path string) (map[string]*Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rec := make(map[string]*Result)
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rec, nil
}

// checkGate compares the fresh results against the baseline file: every
// gated metric on every benchmark present in both must be at least
// (1 - tol) × baseline. Returns false (and prints the offenders) on any
// regression; a missing or unreadable baseline fails loudly too — a silent
// pass there would hide a broken CI wiring.
func checkGate(results map[string]*Result, baseline, metricList string, tol float64) bool {
	base, err := readRecord(baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: gate baseline: %v\n", err)
		return false
	}
	var metrics []string
	for _, m := range strings.Split(metricList, ",") {
		if m = strings.TrimSpace(m); m != "" {
			metrics = append(metrics, m)
		}
	}
	if len(metrics) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: -gate set but -gate-metrics empty")
		return false
	}
	ok, checked := true, 0
	for name, nr := range results {
		br := base[name]
		if br == nil {
			continue
		}
		for _, m := range metrics {
			bv, hasB := br.Metrics[m]
			nv, hasN := nr.Metrics[m]
			if !hasB || bv <= 0 {
				continue
			}
			if !hasN {
				fmt.Fprintf(os.Stderr, "benchjson: GATE FAIL %s: metric %q missing from new run (baseline %.4g)\n", name, m, bv)
				ok = false
				continue
			}
			checked++
			if floor := bv * (1 - tol); nv < floor {
				fmt.Fprintf(os.Stderr, "benchjson: GATE FAIL %s: %s = %.4g, below %.4g (baseline %.4g - %.0f%%)\n",
					name, m, nv, floor, bv, tol*100)
				ok = false
			} else {
				fmt.Fprintf(os.Stderr, "benchjson: gate ok %s: %s = %.4g (baseline %.4g)\n", name, m, nv, bv)
			}
		}
	}
	if checked == 0 && ok {
		fmt.Fprintln(os.Stderr, "benchjson: gate checked no metrics — baseline/benchmark name mismatch?")
		return false
	}
	return ok
}

// parseLine parses one `Benchmark... N value unit [value unit]...` line.
// Returns nil for non-benchmark lines.
func parseLine(line string) (*Result, string) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return nil, ""
	}
	// Strip the -N GOMAXPROCS suffix so names are stable across machines.
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, ""
	}
	r := &Result{Iterations: iters, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, ""
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		case "MB/s":
			r.Metrics["MB/s"] = v
		default:
			r.Metrics[unit] = v
		}
	}
	if len(r.Metrics) == 0 {
		r.Metrics = nil
	}
	return r, name
}
