// Command benchjson converts `go test -bench` output into a JSON benchmark
// record. It passes every input line through to stdout unchanged (so it can
// sit at the end of a pipe without hiding the run) and writes a machine-
// readable summary — ns/op, B/op, allocs/op, and every custom metric such as
// the figure goodputs — keyed by benchmark name.
//
//	go test -run XXX -bench . -benchmem . | go run ./cmd/benchjson -o BENCH_sim.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed line.
type Result struct {
	NsPerOp     float64            `json:"ns_op"`
	BytesPerOp  float64            `json:"bytes_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_op,omitempty"`
	Iterations  int64              `json:"iterations"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("o", "BENCH_sim.json", "output JSON file")
	flag.Parse()

	results := make(map[string]*Result)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if r, name := parseLine(line); r != nil {
			results[name] = r
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), *out)
}

// parseLine parses one `Benchmark... N value unit [value unit]...` line.
// Returns nil for non-benchmark lines.
func parseLine(line string) (*Result, string) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return nil, ""
	}
	// Strip the -N GOMAXPROCS suffix so names are stable across machines.
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, ""
	}
	r := &Result{Iterations: iters, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, ""
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		case "MB/s":
			r.Metrics["MB/s"] = v
		default:
			r.Metrics[unit] = v
		}
	}
	if len(r.Metrics) == 0 {
		r.Metrics = nil
	}
	return r, name
}
