// Command mtploadgen drives an MTP sink with a configurable message
// workload over UDP (or an in-process pair with -local) and reports message
// completion latency percentiles and goodput — a minimal load-testing rig
// for the transport.
//
//	mtploadgen -local -count 2000 -size 16384 -concurrency 16
//	mtploadgen -sink 127.0.0.1:9999            # run the sink
//	mtploadgen -target 127.0.0.1:9999 -count 100
//
// With -runfile, mtploadgen becomes the deployment launcher: it parses the
// experiment points (onet-style table or JSON; see internal/platform),
// re-execs itself once per process per point, coordinates the workers over
// a TCP control channel, and prints one benchmark line per point on stdout
// — pipe through cmd/benchjson to record or gate BENCH_net.json:
//
//	mtploadgen -runfile ci/netbench.run | benchjson -o BENCH_net.json
//
// Launcher mode can inject process chaos to rehearse crash tolerance: -chaos
// takes an explicit schedule spec ("kill:2@150ms"), or -chaos-seed derives a
// reproducible random schedule (printed in spec form so a failing run can be
// pinned). A run whose schedule kills a worker must come back degraded —
// survivors salvaged and audited — or the launcher exits non-zero:
//
//	mtploadgen -runfile ci/chaos.run -chaos kill:2@150ms
//	mtploadgen -runfile ci/chaos.run -chaos-seed 7 -chaos-events 2
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"sort"
	"sync"
	"time"

	"mtp"
	"mtp/internal/chaos"
	"mtp/internal/platform"
)

func main() {
	var (
		sink        = flag.String("sink", "", "run a sink on this UDP address")
		target      = flag.String("target", "", "send load to this sink address")
		local       = flag.Bool("local", false, "run sink and generator in-process over loopback UDP")
		count       = flag.Int("count", 1000, "messages to send")
		size        = flag.Int("size", 16384, "message size in bytes")
		concurrency = flag.Int("concurrency", 8, "concurrent outstanding messages")
		port        = flag.Uint("port", 7, "MTP service port")
		runfile     = flag.String("runfile", "", "run a multi-process experiment series from this runfile")

		// Chaos injection (launcher mode only).
		chaosSpec   = flag.String("chaos", "", "chaos schedule spec, e.g. kill:2@150ms,stop:1@1s+500ms")
		chaosSeed   = flag.Int64("chaos-seed", 0, "derive a reproducible chaos schedule from this seed")
		chaosEvents = flag.Int("chaos-events", 1, "events in a seed-derived schedule")
		chaosWindow = flag.Duration("chaos-window", 2*time.Second, "offset window for a seed-derived schedule")

		// Internal: the launcher re-execs itself with these to become one
		// worker of a point.
		workerMode  = flag.Bool("platform-worker", false, "internal: run as a platform worker")
		controlAddr = flag.String("control", "", "internal: launcher control address")
		workerIndex = flag.Int("index", -1, "internal: worker index (0 = sink)")
	)
	flag.Parse()

	switch {
	case *workerMode:
		if err := platform.RunWorker(*controlAddr, *workerIndex); err != nil {
			log.Fatalf("worker %d: %v", *workerIndex, err)
		}
	case *runfile != "":
		runRunfile(*runfile, *chaosSpec, *chaosSeed, *chaosEvents, *chaosWindow)
	case *sink != "":
		runSink(*sink, uint16(*port))
	case *local:
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("listen: %v", err)
		}
		node, err := mtp.NewNode(pc, mtp.Config{Port: uint16(*port)})
		if err != nil {
			log.Fatalf("sink: %v", err)
		}
		defer node.Close()
		runLoad(node.Addr().String(), uint16(*port), *count, *size, *concurrency)
	case *target != "":
		runLoad(*target, uint16(*port), *count, *size, *concurrency)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runRunfile is launcher mode: execute every point, bench lines on
// stdout, progress on stderr. Any failed point — including the zero-loss
// gate — exits non-zero after the remaining points have run.
func runRunfile(path, chaosSpec string, chaosSeed int64, chaosEvents int, chaosWindow time.Duration) {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("runfile: %v", err)
	}
	points, err := platform.ParseRunfile(data)
	if err != nil {
		log.Fatal(err)
	}
	sched := chaosSchedule(points, chaosSpec, chaosSeed, chaosEvents, chaosWindow)
	results, err := platform.Run(points, platform.Options{
		Spawn: platform.ReexecSpawn("-platform-worker", "-control", "{control}", "-index", "{index}"),
		Log:   log.Printf,
		Chaos: sched,
	})
	for _, r := range results {
		fmt.Println(r.BenchLine())
	}
	if err != nil {
		log.Fatal(err)
	}
	// A schedule with kills must have landed: if every point still came back
	// clean, the chaos missed the run window and the smoke proved nothing.
	if len(sched.Victims()) > 0 {
		degraded := false
		for _, r := range results {
			degraded = degraded || r.Degraded
		}
		if !degraded {
			log.Fatalf("chaos schedule %q killed no run: every point completed clean", sched)
		}
	}
}

// chaosSchedule resolves the chaos flags into a schedule: an explicit spec
// wins; otherwise a nonzero seed derives one over the generator indexes
// shared by every point (index 0, the sink, is never a victim — killing it
// fails the point by design).
func chaosSchedule(points []platform.Point, spec string, seed int64, events int, window time.Duration) chaos.Schedule {
	if spec != "" {
		sched, err := chaos.Parse(spec)
		if err != nil {
			log.Fatal(err)
		}
		return sched
	}
	if seed == 0 {
		return nil
	}
	minProcs := points[0].Procs
	for _, p := range points[1:] {
		if p.Procs < minProcs {
			minProcs = p.Procs
		}
	}
	gens := make([]int, 0, minProcs-1)
	for i := 1; i < minProcs; i++ {
		gens = append(gens, i)
	}
	sched := chaos.Generate(seed, gens, events, window)
	log.Printf("chaos schedule (seed %d): %s", seed, sched)
	return sched
}

func runSink(addr string, port uint16) {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	var received, bytes uint64
	var mu sync.Mutex
	node, err := mtp.NewNode(pc, mtp.Config{Port: port, OnMessage: func(m mtp.Message) {
		mu.Lock()
		received++
		bytes += uint64(len(m.Data))
		mu.Unlock()
	}})
	if err != nil {
		log.Fatalf("node: %v", err)
	}
	defer node.Close()
	log.Printf("mtp sink on %s", node.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	mu.Lock()
	log.Printf("received %d messages, %d bytes", received, bytes)
	mu.Unlock()
}

func runLoad(target string, port uint16, count, size, concurrency int) {
	pc, err := net.ListenPacket("udp", "0.0.0.0:0")
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	node, err := mtp.NewNode(pc, mtp.Config{Port: 100})
	if err != nil {
		log.Fatalf("node: %v", err)
	}
	defer node.Close()

	payload := make([]byte, size)
	lat := make([]time.Duration, 0, count)
	var mu sync.Mutex
	sem := make(chan struct{}, concurrency)
	var wg sync.WaitGroup

	start := time.Now()
	for i := 0; i < count; i++ {
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			out, err := node.Send(target, port, payload)
			if err != nil {
				log.Printf("send: %v", err)
				return
			}
			select {
			case <-out.Done():
				mu.Lock()
				lat = append(lat, time.Since(t0))
				mu.Unlock()
			case <-time.After(30 * time.Second):
				log.Printf("message %d timed out", out.ID)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	if len(lat) == 0 {
		log.Fatal("no messages completed")
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) time.Duration {
		idx := int(p / 100 * float64(len(lat)-1))
		return lat[idx]
	}
	totalBytes := float64(len(lat)) * float64(size)
	fmt.Printf("completed %d/%d messages of %d bytes in %v\n", len(lat), count, size, elapsed)
	fmt.Printf("goodput: %.2f Gbit/s\n", totalBytes*8/elapsed.Seconds()/1e9)
	fmt.Printf("latency p50=%v p90=%v p99=%v max=%v\n", pct(50), pct(90), pct(99), lat[len(lat)-1])
	fmt.Printf("stats: %+v\n", node.Stats())
}
