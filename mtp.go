// Package mtp is a userspace implementation of MTP, the message transport
// protocol for in-network computing from "TCP is Harmful to In-Network
// Computing: Designing a Message Transport Protocol" (HotNets'21).
//
// Messages — not byte streams — are the unit of transmission,
// acknowledgement, retransmission, scheduling, and load balancing. Every
// packet carries its message's identity and length, so network devices can
// act on messages with bounded state: caches can answer requests in-network,
// balancers can steer whole messages, and offloads can mutate data in
// flight. Congestion control is per (pathlet, traffic class): the network
// stamps feedback for the resources a packet crossed into its header, the
// receiver echoes it, and the sender evolves one congestion window per
// pathlet, so path changes never invalidate learned state.
//
// A Node binds the protocol engine to any net.PacketConn (UDP in practice,
// or the in-memory network from NewMemNetwork in tests):
//
//	pc, _ := net.ListenPacket("udp", "127.0.0.1:0")
//	node, _ := mtp.NewNode(pc, mtp.Config{
//		Port:      7,
//		OnMessage: func(m mtp.Message) { fmt.Printf("%s\n", m.Data) },
//	})
//	defer node.Close()
//
//	// elsewhere
//	msg, _ := peer.Send(node.Addr().String(), 7, []byte("hello"))
//	<-msg.Done() // acknowledged end to end
//
// The same engine runs under virtual time in this repository's simulator,
// which is how the paper's evaluation figures are reproduced (see
// EXPERIMENTS.md).
package mtp

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"mtp/internal/cc"
	"mtp/internal/core"
	"mtp/internal/trace"
	"mtp/internal/udpnet"
	"mtp/internal/wire"
)

// Config parameterizes a Node.
type Config struct {
	// Port identifies the application on this node (like a UDP port, but
	// inside MTP's own header).
	Port uint16

	// Epoch is the node's incarnation number, stamped on every outgoing
	// packet so peers detect a restart: packets from a dead incarnation are
	// dropped and per-peer protocol state (duplicate suppression,
	// reassembly, congestion estimates) is reset when a new incarnation
	// appears. Zero (the default) auto-seeds a per-boot epoch from the
	// millisecond clock, monotonic within the process; set it explicitly
	// only to pin incarnations in tests.
	Epoch uint32

	// MSS is the maximum message payload bytes per packet. The default of
	// 1200 leaves room for the MTP header inside a 1500-byte MTU datagram.
	MSS int

	// TC is the traffic class (entity) stamped on outgoing messages.
	TC uint8

	// CC selects the per-pathlet congestion control algorithm: "dctcp"
	// (default), "aimd", "rcp", or "swift".
	CC string

	// RTO is the retransmission timeout. Default 20ms (wide-area safe; tune
	// down for rack-scale deployments).
	RTO time.Duration

	// AckEvery batches acknowledgements per N data packets. Default 1.
	AckEvery int

	// OnMessage delivers completed inbound messages. It is called from the
	// node's receive goroutine; do not block.
	OnMessage func(m Message)

	// BlobPort, when non-zero, dedicates one MTP port to the bulk-data
	// (blob) mode: messages arriving on it are reassembled into blobs and
	// delivered via OnBlob instead of OnMessage.
	BlobPort uint16
	// OnBlob delivers completed blobs (requires BlobPort).
	OnBlob func(b Blob)

	// TraceEvents, when positive, keeps a ring of that many protocol
	// events (sends, acks, retransmissions, deliveries) readable via
	// Node.TraceDump — lightweight always-on diagnostics.
	TraceEvents int

	// NackDelay makes receiver gap-NACKs reordering-tolerant: a hole is
	// NACKed only after staying open this long. Zero NACKs immediately
	// (correct when the network keeps messages atomic).
	NackDelay time.Duration

	// FeedbackBudget caps echoed pathlet-feedback entries per ACK (header
	// overhead control); zero means unlimited.
	FeedbackBudget int

	// AutoExcludePathlets enables the policy that asks the network to
	// avoid persistently congested pathlets via the header exclude list.
	AutoExcludePathlets bool

	// FailoverRTOs enables pathlet failure recovery: after this many
	// consecutive timeout rounds on one pathlet the node declares it dead,
	// excludes it in outgoing headers so the network reroutes, and fails
	// surviving messages over to a healthy pathlet. Zero disables.
	FailoverRTOs int

	// ProbeInterval is how often a dead pathlet is probed for readmission
	// (one live packet has the pathlet omitted from its exclude list; any
	// feedback from it readmits the pathlet). Default 8x RTO. Requires
	// FailoverRTOs > 0.
	ProbeInterval time.Duration
}

// Message is a completed inbound message.
type Message struct {
	// From is the sender's network address (reply with Node.Send to
	// From.String()).
	From net.Addr
	// SrcPort/DstPort are the MTP ports.
	SrcPort, DstPort uint16
	// ID is the sender-assigned message ID.
	ID uint64
	// Priority is the application priority the sender assigned.
	Priority uint8
	// TC is the sender's traffic class.
	TC uint8
	// Data is the reassembled payload.
	Data []byte
}

// Outgoing tracks one message submitted with Send.
type Outgoing struct {
	ID   uint64
	done chan struct{}
}

// Done is closed when every packet of the message has been acknowledged.
func (o *Outgoing) Done() <-chan struct{} { return o.done }

// Node is one MTP endpoint bound to a packet connection.
type Node struct {
	pc    net.PacketConn
	cfg   Config
	start time.Time

	// tr is the batched real-socket backend (internal/udpnet), engaged when
	// pc carries UDP addresses. It owns the I/O goroutines, the outbound
	// ring, and the timer wheel; peers are then keyed by netip.AddrPort
	// instead of address strings. nil for in-memory and custom PacketConns,
	// which keep the portable single-buffer read loop.
	tr *udpnet.Transport

	mu      sync.Mutex
	ep      *core.Endpoint
	peers   map[string]net.Addr
	waiters map[uint64]*Outgoing
	timer   *time.Timer
	closed  bool
	// addrKeys caches peer address strings pre-boxed as core.Addr so the
	// per-packet paths do not allocate an interface header per conversion.
	addrKeys map[string]core.Addr
	// apByName/udpFrom are the transport-mode peer caches: address string →
	// normalized AddrPort key, and AddrPort key → net.Addr for Message.From.
	apByName map[string]netip.AddrPort
	udpFrom  map[netip.AddrPort]*net.UDPAddr
	// trIn is the reused Inbound for transport-delivered packets (the
	// endpoint copies what it keeps before OnPacket returns).
	trIn core.Inbound
	// wbuf is the reused datagram encode buffer (Output runs under mu).
	wbuf []byte
	// inbox stages completed messages while mu is held; they are handed to
	// cfg.OnMessage after the lock is released so the handler may call
	// Send and friends.
	inbox []Message
	blob  blobState

	// RPC layer state (rpc.go).
	rpc         rpcState
	rpcHandlers map[uint16]Handler

	wg sync.WaitGroup
}

// NewNode binds an MTP endpoint to pc and starts its receive loop. The node
// owns pc and closes it on Close.
func NewNode(pc net.PacketConn, cfg Config) (*Node, error) {
	if pc == nil {
		return nil, errors.New("mtp: nil PacketConn")
	}
	if cfg.MSS == 0 {
		cfg.MSS = 1200
	}
	if cfg.MSS < 64 || cfg.MSS > 60000 {
		return nil, fmt.Errorf("mtp: MSS %d out of range", cfg.MSS)
	}
	if cfg.RTO == 0 {
		cfg.RTO = 20 * time.Millisecond
	}
	kind := cc.Kind(cfg.CC)
	if cfg.CC == "" {
		kind = cc.KindDCTCP
	}
	if _, err := cc.New(kind, cc.Config{MSS: cfg.MSS}); err != nil {
		return nil, fmt.Errorf("mtp: %w", err)
	}
	if cfg.Epoch == 0 {
		cfg.Epoch = newEpoch()
	}

	n := &Node{
		pc:       pc,
		cfg:      cfg,
		start:    time.Now(),
		peers:    make(map[string]net.Addr),
		waiters:  make(map[uint64]*Outgoing),
		addrKeys: make(map[string]core.Addr),
	}
	if _, udp := pc.LocalAddr().(*net.UDPAddr); udp {
		// Real-socket path: batched syscalls, pooled buffers, timer wheel.
		maxDgram := cfg.MSS + 1024 // header room; ACK-only packets are smaller
		if maxDgram < 4096 {
			maxDgram = 4096
		}
		tr, err := udpnet.NewTransport(udpnet.Config{
			Conn:        pc,
			MaxDatagram: maxDgram,
			Wheel:       nodeWheel(),
			OnPacket:    n.onTransportPacket,
			OnBatchEnd:  n.drainAll,
			OnTimer:     n.onTimer,
		})
		if err != nil {
			return nil, fmt.Errorf("mtp: %w", err)
		}
		n.tr = tr
		n.apByName = make(map[string]netip.AddrPort)
		n.udpFrom = make(map[netip.AddrPort]*net.UDPAddr)
	}
	var ring *trace.Ring
	if cfg.TraceEvents > 0 {
		ring = trace.NewRing(cfg.TraceEvents)
	}
	var autoExclude *core.AutoExcludeConfig
	if cfg.AutoExcludePathlets {
		autoExclude = &core.AutoExcludeConfig{}
	}
	coreCfg := core.Config{
		LocalPort:      cfg.Port,
		Epoch:          cfg.Epoch,
		MSS:            cfg.MSS,
		TC:             cfg.TC,
		CC:             kind,
		RTO:            cfg.RTO,
		AckEvery:       cfg.AckEvery,
		NackDelay:      cfg.NackDelay,
		FeedbackBudget: cfg.FeedbackBudget,
		AutoExclude:    autoExclude,
		FailoverRTOs:   cfg.FailoverRTOs,
		ProbeInterval:  cfg.ProbeInterval,
		Trace:          ring,
		OnMessage:      n.deliver,
		OnMessageSent: func(m *core.OutMessage) {
			if w, ok := n.waiters[m.ID]; ok {
				delete(n.waiters, m.ID)
				close(w.done)
			}
		},
	}
	n.ep = core.NewEndpoint(n, coreCfg)

	if n.tr != nil {
		n.tr.Start()
	} else {
		n.wg.Add(1)
		go n.readLoop()
	}
	return n, nil
}

// epochLast remembers the most recent incarnation epoch handed out in this
// process, so same-process restarts (a Node closed and reopened within one
// millisecond, common in tests and respawned workers) still get strictly
// increasing epochs.
var epochLast atomic.Uint32

// newEpoch derives a per-boot incarnation epoch from the millisecond clock.
// The value lives in a wrapping uint32 space compared with serial-number
// arithmetic (wire.EpochNewer), so successive boots order correctly as long
// as they are less than ~24.8 days apart — far beyond any straggler packet's
// lifetime.
func newEpoch() uint32 {
	for {
		last := epochLast.Load()
		cand := uint32(time.Now().UnixMilli())
		if cand == 0 {
			cand = 1
		}
		if last != 0 && !wire.EpochNewer(cand, last) {
			cand = last + 1
			if cand == 0 {
				cand = 1
			}
		}
		if epochLast.CompareAndSwap(last, cand) {
			return cand
		}
	}
}

// nodeWheel returns the process-wide timer wheel shared by every
// socket-backed Node: one wheel goroutine serves all endpoint RTO/pacing
// timers instead of one runtime timer per node per rearm.
var (
	wheelOnce   sync.Once
	sharedWheel *udpnet.Wheel
)

func nodeWheel() *udpnet.Wheel {
	wheelOnce.Do(func() { sharedWheel = udpnet.NewWheel(0, 0) })
	return sharedWheel
}

// onTransportPacket feeds one decoded datagram from the transport reader
// into the engine. hdr and data are only valid during the call; the
// endpoint copies what it keeps (core.Inbound contract).
func (n *Node) onTransportPacket(from netip.AddrPort, hdr *wire.Header, data []byte) {
	n.mu.Lock()
	if !n.closed {
		if _, ok := n.udpFrom[from]; !ok {
			n.udpFrom[from] = net.UDPAddrFromAddrPort(from)
		}
		n.trIn = core.Inbound{From: from, Hdr: hdr, Data: data}
		n.ep.OnPacket(&n.trIn)
	}
	n.mu.Unlock()
	// Completed messages are drained once per batch via OnBatchEnd.
}

// Addr returns the node's network address.
func (n *Node) Addr() net.Addr { return n.pc.LocalAddr() }

// Stats is a snapshot of a Node's protocol and transport counters.
type Stats struct {
	core.EndpointStats
	// RingFullDrops counts outgoing packets dropped because the transport's
	// send ring was full — NIC-style local drops, recovered by
	// retransmission but distinct from network loss. Zero for non-UDP
	// (in-memory) nodes, which have no ring.
	RingFullDrops uint64
}

// Stats returns a snapshot of protocol counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	es := n.ep.Stats
	n.mu.Unlock()
	s := Stats{EndpointStats: es}
	if n.tr != nil {
		s.RingFullDrops = n.tr.Stats().RingFullDrops
	}
	return s
}

// Epoch returns the node's incarnation epoch (auto-seeded unless pinned via
// Config.Epoch).
func (n *Node) Epoch() uint32 { return n.cfg.Epoch }

// TraceDump renders the retained protocol event trace (empty unless
// Config.TraceEvents was set).
func (n *Node) TraceDump() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ep.Config().Trace == nil {
		return ""
	}
	return n.ep.Config().Trace.Dump()
}

// Send queues data as one MTP message to the peer at addr (a network
// address string resolvable by the underlying PacketConn's network) and MTP
// port dstPort. The returned handle's Done channel closes when the message
// is fully acknowledged.
func (n *Node) Send(addr string, dstPort uint16, data []byte) (*Outgoing, error) {
	return n.SendPriority(addr, dstPort, data, 0)
}

// SendPriority is Send with an application priority: higher-priority
// messages are scheduled first among this node's parallel messages.
func (n *Node) SendPriority(addr string, dstPort uint16, data []byte, priority uint8) (*Outgoing, error) {
	if len(data) == 0 {
		return nil, errors.New("mtp: empty message")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, errors.New("mtp: node closed")
	}
	key, err := n.sendKey(addr)
	if err != nil {
		return nil, err
	}
	m := n.ep.Send(key, dstPort, data, core.SendOptions{Priority: priority})
	out := &Outgoing{ID: m.ID, done: make(chan struct{})}
	if m.Done() {
		close(out.done) // tiny message fully acked already (loopback)
	} else {
		n.waiters[m.ID] = out
	}
	return out, nil
}

// sendKey resolves a peer address string to its core.Addr form — a
// normalized netip.AddrPort in transport mode (comparable without per-packet
// string conversions), the interned string otherwise. Called under mu.
func (n *Node) sendKey(addr string) (core.Addr, error) {
	if n.tr != nil {
		if ap, ok := n.apByName[addr]; ok {
			return ap, nil
		}
		ua, err := net.ResolveUDPAddr(n.pc.LocalAddr().Network(), addr)
		if err != nil {
			return nil, err
		}
		p := ua.AddrPort()
		ap := netip.AddrPortFrom(p.Addr().Unmap(), p.Port())
		n.apByName[addr] = ap
		if _, ok := n.udpFrom[ap]; !ok {
			n.udpFrom[ap] = ua
		}
		return ap, nil
	}
	if _, ok := n.peers[addr]; !ok {
		resolved, err := n.resolve(addr)
		if err != nil {
			return nil, err
		}
		n.peers[addr] = resolved
	}
	return n.addrKey(addr), nil
}

// addrKey returns the cached boxed form of a peer address string, avoiding
// an interface-conversion allocation per packet. Called under mu.
func (n *Node) addrKey(addr string) core.Addr {
	a, ok := n.addrKeys[addr]
	if !ok {
		a = addr
		n.addrKeys[addr] = a
	}
	return a
}

// fromAddr converts a core.Addr peer key back to a net.Addr for delivery to
// the application. Called under mu.
func (n *Node) fromAddr(key core.Addr) net.Addr {
	switch a := key.(type) {
	case netip.AddrPort:
		if ua := n.udpFrom[a]; ua != nil {
			return ua
		}
		return net.UDPAddrFromAddrPort(a)
	case string:
		if from := n.peers[a]; from != nil {
			return from
		}
		return memAddr(a)
	}
	return nil
}

func (n *Node) resolve(addr string) (net.Addr, error) {
	network := n.pc.LocalAddr().Network()
	switch network {
	case "udp", "udp4", "udp6":
		return net.ResolveUDPAddr(network, addr)
	default:
		// In-memory and custom PacketConns accept their own string form.
		return memAddr(addr), nil
	}
}

// Close shuts the node down and closes the underlying connection.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	if n.timer != nil {
		n.timer.Stop()
	}
	n.mu.Unlock()
	if n.tr != nil {
		// Transport owns the socket, the I/O goroutines, and the wheel
		// timer; Close tears all three down and waits for the goroutines.
		return n.tr.Close()
	}
	err := n.pc.Close()
	n.wg.Wait()
	return err
}

// deliver stages a completed message for the user callback. Called under mu.
func (n *Node) deliver(m *core.InMessage) {
	if n.cfg.BlobPort != 0 && m.DstPort == n.cfg.BlobPort {
		n.feedBlob(m)
		return
	}
	if n.cfg.OnMessage == nil && n.rpcHandlers == nil && n.rpc.pending == nil {
		return
	}
	from := n.fromAddr(m.From)
	n.inbox = append(n.inbox, Message{
		From:     from,
		SrcPort:  m.SrcPort,
		DstPort:  m.DstPort,
		ID:       m.MsgID,
		Priority: m.Pri,
		TC:       m.TC,
		Data:     m.Data,
	})
}

// drainInbox invokes the user callback for staged messages. Must be called
// without holding mu.
func (n *Node) drainInbox() {
	for {
		n.mu.Lock()
		if len(n.inbox) == 0 {
			n.mu.Unlock()
			return
		}
		pending := n.inbox
		n.inbox = nil
		n.mu.Unlock()
		for _, m := range pending {
			if n.handleRPC(m) {
				continue
			}
			if n.cfg.OnMessage != nil {
				n.cfg.OnMessage(m)
			}
		}
	}
}

// drainAll flushes both message and blob staging areas.
func (n *Node) drainAll() {
	n.drainInbox()
	n.drainBlobInbox()
}

// --- core.Env implementation (wall-clock) ---

// Now implements core.Env.
func (n *Node) Now() time.Duration {
	if n.tr != nil {
		// The wheel's clock, so SetTimer deadlines share a timebase.
		return n.tr.Now()
	}
	return time.Since(n.start)
}

// Output implements core.Env: encode and transmit. Called under mu. In
// transport mode the packet is encoded into a pooled buffer and queued on
// the lock-free outbound ring; the writer goroutine performs the syscalls.
func (n *Node) Output(pkt *core.Outbound) {
	if n.tr != nil {
		if ap, ok := pkt.Dst.(netip.AddrPort); ok {
			n.tr.Send(ap, pkt.Hdr, pkt.Data)
		}
		return
	}
	addrStr, _ := pkt.Dst.(string)
	to := n.peers[addrStr]
	if to == nil {
		resolved, err := n.resolve(addrStr)
		if err != nil {
			return
		}
		n.peers[addrStr] = resolved
		to = resolved
	}
	buf, err := pkt.Hdr.Encode(n.wbuf[:0])
	if err != nil {
		return
	}
	buf = append(buf, pkt.Data...)
	n.wbuf = buf[:0]
	// Ignore transient write errors; reliability recovers them.
	_, _ = n.pc.WriteTo(buf, to)
}

// OutputNonRetaining implements core.OutputNonRetainer: Output encodes the
// header to bytes before returning, so the endpoint may reuse header and
// ack-list storage across packets.
func (n *Node) OutputNonRetaining() bool { return true }

// SetTimer implements core.Env. Called under mu. One timer is allocated per
// node and rearmed with Reset; a rearm that races an in-flight firing at
// worst delivers one spurious OnTimer, which the endpoint tolerates (it
// re-derives its deadlines every call).
func (n *Node) SetTimer(at time.Duration) {
	if n.tr != nil {
		n.tr.SetTimer(at)
		return
	}
	if n.timer == nil {
		n.timer = time.AfterFunc(time.Hour, n.onTimer)
		n.timer.Stop()
	}
	n.timer.Stop()
	if at <= 0 || n.closed {
		return
	}
	d := at - n.Now()
	if d < 0 {
		d = 0
	}
	n.timer.Reset(d)
}

// onTimer is the persistent timer callback.
func (n *Node) onTimer() {
	n.mu.Lock()
	if !n.closed {
		n.ep.OnTimer(n.Now())
	}
	n.mu.Unlock()
	n.drainAll()
}

// readLoop decodes datagrams and feeds the engine. The header, Inbound, and
// payload slice are all reused across packets: Endpoint.OnPacket copies what
// it keeps before returning (see core.Inbound).
func (n *Node) readLoop() {
	defer n.wg.Done()
	buf := make([]byte, 65536)
	var hdr wire.Header
	var in core.Inbound
	for {
		nr, from, err := n.pc.ReadFrom(buf)
		if err != nil {
			return // closed
		}
		consumed, derr := wire.DecodeInto(&hdr, buf[:nr])
		if derr != nil {
			continue // not an MTP packet
		}
		var data []byte
		if consumed < nr {
			data = buf[consumed:nr]
		}
		n.mu.Lock()
		if !n.closed {
			key := from.String()
			if _, ok := n.peers[key]; !ok {
				n.peers[key] = from
			}
			in = core.Inbound{From: n.addrKey(key), Hdr: &hdr, Data: data}
			n.ep.OnPacket(&in)
		}
		n.mu.Unlock()
		n.drainAll()
	}
}
